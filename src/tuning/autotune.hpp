// Per-kernel scheme auto-tuning: measure where each schedule wins, persist
// the result, and install it as the consultable dispatch policy.
//
// The paper tunes one thing -- the eq.-15 hybrid cutoff (Section 4.2) --
// because its code has one schedule. This library has five ways to run a
// product (plain packed GEMM, fused Strassen at one or two levels, the
// classic eq.-15 hybrid recursion, the task-DAG parallel schedule), and
// each pairwise crossover is, like τ
// itself, a property of the host's memory system and the active
// micro-kernel (Huang et al., arXiv:1605.01078). The autotune pass sweeps
// them all in one run:
//
//   1. (optionally) the eq.-15 cutoffs, per beta case, via the existing
//      crossover pipeline (tuning/crossover.hpp), in the element type
//      under tune;
//   2. a geometric size sweep timing GEMM vs fused-L1 vs fused-L2 vs the
//      classic hybrid vs DAG, reduced to four scheme crossovers (tau_fused,
//      tau_fused2, tau_hybrid, tau_dag) by the same sweep-midpoint logic
//      the paper used for τ.
//
// The result is a TunedCriteria stamped with kernel and element type. It
// round-trips through tuning/persist.cpp, and install_criteria() publishes
// it as the core::TunedPolicy that `use_tuned` calls consult -- after
// verifying the stamp against the active dispatch, the hard miss that
// keeps stale files from mis-routing.
#pragma once

#include <string>
#include <vector>

#include "core/tuned_policy.hpp"
#include "tuning/persist.hpp"

namespace strassen::tuning {

/// Controls one autotune pass.
struct AutotuneOptions {
  /// Scheme-crossover sweep range: sizes grow geometrically (x1.5) from
  /// min_size to max_size. Defaults are a laptop-scale budget; benches
  /// raise max_size toward paper scale.
  index_t min_size = 256;
  index_t max_size = 2048;
  int reps = 2;  ///< timing repetitions per (size, schedule); minimum kept

  /// Thread budget the DAG schedule is measured with (0 = the pool size).
  /// Recorded in TunedCriteria::threads.
  std::size_t dag_threads = 0;

  /// Also tune the eq.-15 hybrid cutoffs (both beta cases) with these
  /// sweep options. When false -- the quick-autotune CI budget -- the
  /// cutoffs keep the paper defaults and only the scheme crossovers are
  /// measured.
  bool tune_cutoffs = false;
  CrossoverOptions eq15;
};

/// Measures scheme (and optionally eq.-15) crossovers for the element type
/// in the active kernel family and returns the stamped criteria. Runs real
/// timings; expensive at large max_size.
TunedCriteria autotune_double(const AutotuneOptions& opts);
TunedCriteria autotune_float(const AutotuneOptions& opts);

/// One measured point of the scheme sweep: wall seconds of every candidate
/// schedule at equivalent order s.
struct SchemePoint {
  index_t s = 0;
  double gemm = 0;    ///< plain packed GEMM
  double fused1 = 0;  ///< one fused Strassen level
  double fused2 = 0;  ///< two fused levels
  double hybrid = 0;  ///< classic eq.-15 automatic hybrid recursion
  double s2 = 0;      ///< forced STRASSEN2 recursion
  double dag = 0;     ///< task-DAG parallel schedule
};

/// The five thresholds of the tuned dispatch in equivalent orders (0 =
/// that schedule never won in range).
struct SchemeCrossovers {
  double tau_fused = 0;
  double tau_fused2 = 0;
  double tau_hybrid = 0;
  double tau_s2 = 0;
  double tau_dag = 0;
};

/// Pure sweep-to-crossover reduction, separated from measurement so tests
/// can feed synthetic (or recorded) sweeps and assert properties of the
/// resulting dispatch -- in particular that core::tuned_path_for never
/// selects a schedule the sweep measured as the worst at any swept size.
/// The sweep must be sorted by ascending s.
SchemeCrossovers reduce_scheme_sweep(const std::vector<SchemePoint>& sweep);

/// Converts persisted criteria into the in-process policy form.
core::TunedPolicy policy_from_criteria(const TunedCriteria& criteria);

/// Publishes `criteria` as the consultable policy for its element type.
/// Returns false -- installing nothing -- when the stamp does not match
/// the active dispatch (wrong or missing kernel record): the persistence
/// layer's hard miss, enforced again at install time so a caller that
/// skipped matches_active_kernel() cannot force a stale policy in.
[[nodiscard]] bool install_criteria(const TunedCriteria& criteria);

/// Loads a criteria file and verifies it was tuned for `elem_kind` ("f64"
/// or "f32") under the active kernel, throwing strassen::Error with the
/// mismatch spelled out otherwise. The checked front door for configuring
/// a run from a persisted file.
TunedCriteria load_matching_criteria_file(const std::string& path,
                                          const std::string& elem_kind);

}  // namespace strassen::tuning
