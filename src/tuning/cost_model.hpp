// Fitted performance models and the model-derived cutoff criterion.
//
// Section 3.4 of the paper notes that operation count is not an accurate
// enough predictor to tune real code and defers richer performance models
// to the companion report [14]. This module implements that idea: fit
//
//   t_gemm(m,k,n)  ~=  c0 + mu * mkn + nu * (mk + kn + mn)
//   t_add(m,n)     ~=  c1 + gamma * mn
//
// from a handful of timed samples (least squares via the library's own LU
// solver), then derive the one-level crossover condition analytically.
// Substituting the models into "standard <= one Strassen level" gives
//
//   mu/8 * mkn  <=  (6 c0 + 15 c1) + (3/4 nu + gamma)(mk + kn + mn)
//                   + 3/4 gamma mn
//
// which, dropping the constants, is exactly the parameterized form
// (eq. 13) with
//
//   tau_m = tau_n = (6 nu + 8 gamma) / mu     (kn and mk coefficients)
//   tau_k = (6 nu + 14 gamma) / mu            (mn coefficient)
//
// So the fitted models predict the empirical tuner's parameters without
// running the full crossover sweeps -- bench_ext_model_cutoff compares the
// two on the host.
#pragma once

#include <functional>
#include <vector>

#include "core/cutoff.hpp"
#include "support/config.hpp"

namespace strassen::tuning {

/// Fitted DGEMM cost model: t = c0 + mu*mkn + nu*(mk+kn+mn).
struct GemmCostModel {
  double c0 = 0.0;
  double mu = 0.0;
  double nu = 0.0;

  double predict(index_t m, index_t k, index_t n) const;
};

/// Fitted matrix-add cost model: t = c1 + gamma*mn.
struct AddCostModel {
  double c1 = 0.0;
  double gamma = 0.0;

  double predict(index_t m, index_t n) const;
};

/// A timed (m, k, n) -> seconds sample.
struct GemmSample {
  index_t m, k, n;
  double seconds;
};

/// Least-squares fit of the GEMM model to samples (needs >= 3 samples with
/// linearly independent feature rows).
GemmCostModel fit_gemm_cost_model(const std::vector<GemmSample>& samples);

/// A timed (m, n) -> seconds add-kernel sample.
struct AddSample {
  index_t m, n;
  double seconds;
};

AddCostModel fit_add_cost_model(const std::vector<AddSample>& samples);

/// Measures DGEMM on a spread of shapes up to max_size (on the active
/// machine profile) and fits the model.
GemmCostModel measure_gemm_cost_model(index_t max_size, int reps = 3);

/// Measures the Strassen add kernel and fits the model.
AddCostModel measure_add_cost_model(index_t max_size, int reps = 3);

/// True when the models predict the standard algorithm is no slower than
/// one level of Winograd recursion on (m, k, n) (the model analogue of
/// eq. 7).
bool model_standard_preferred(const GemmCostModel& gemm,
                              const AddCostModel& add, index_t m, index_t k,
                              index_t n);

/// The model-derived parameterized criterion (eq. 13 with the taus above),
/// combined with the model-derived square crossover into the hybrid form
/// (eq. 15).
core::CutoffCriterion criterion_from_models(const GemmCostModel& gemm,
                                            const AddCostModel& add);

}  // namespace strassen::tuning
