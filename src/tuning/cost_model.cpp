#include "tuning/cost_model.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "blas/gemm.hpp"
#include "core/add_kernels.hpp"
#include "solver/lu.hpp"
#include "support/errors.hpp"
#include "support/matrix.hpp"
#include "support/random.hpp"
#include "support/timing.hpp"

namespace strassen::tuning {

namespace {

// Solves the normal equations X^T X w = X^T y with the library's LU solver
// (dogfooding: the fit runs through the same factorization the LU
// application bench exercises).
std::vector<double> least_squares(const Matrix& x,
                                  const std::vector<double>& y) {
  const index_t rows = x.rows(), cols = x.cols();
  assert(static_cast<index_t>(y.size()) == rows);
  Matrix xtx(cols, cols);
  blas::dgemm(Trans::transpose, Trans::no, cols, cols, rows, 1.0, x.data(),
              x.ld(), x.data(), x.ld(), 0.0, xtx.data(), xtx.ld());
  Matrix xty(cols, 1);
  blas::dgemm(Trans::transpose, Trans::no, cols, 1, rows, 1.0, x.data(),
              x.ld(), y.data(), rows, 0.0, xty.data(), xty.ld());
  const solver::LuFactors f = solver::lu_factor(xtx.view());
  if (f.info != 0) {
    throw Error("cost-model fit: normal equations are singular; provide "
                "more varied samples");
  }
  Matrix w = solver::lu_solve(f, xty.view());
  std::vector<double> out(static_cast<std::size_t>(cols));
  for (index_t i = 0; i < cols; ++i) out[static_cast<std::size_t>(i)] = w(i, 0);
  return out;
}

}  // namespace

double GemmCostModel::predict(index_t m, index_t k, index_t n) const {
  const double mkn = double(m) * double(k) * double(n);
  const double s = double(m) * double(k) + double(k) * double(n) +
                   double(m) * double(n);
  return c0 + mu * mkn + nu * s;
}

double AddCostModel::predict(index_t m, index_t n) const {
  return c1 + gamma * double(m) * double(n);
}

GemmCostModel fit_gemm_cost_model(const std::vector<GemmSample>& samples) {
  assert(samples.size() >= 3);
  const index_t rows = static_cast<index_t>(samples.size());
  Matrix x(rows, 3);
  std::vector<double> y(samples.size());
  for (index_t i = 0; i < rows; ++i) {
    const GemmSample& s = samples[static_cast<std::size_t>(i)];
    x(i, 0) = 1.0;
    x(i, 1) = double(s.m) * double(s.k) * double(s.n);
    x(i, 2) = double(s.m) * double(s.k) + double(s.k) * double(s.n) +
              double(s.m) * double(s.n);
    y[static_cast<std::size_t>(i)] = s.seconds;
  }
  const auto w = least_squares(x, y);
  return GemmCostModel{w[0], w[1], w[2]};
}

AddCostModel fit_add_cost_model(const std::vector<AddSample>& samples) {
  assert(samples.size() >= 2);
  const index_t rows = static_cast<index_t>(samples.size());
  Matrix x(rows, 2);
  std::vector<double> y(samples.size());
  for (index_t i = 0; i < rows; ++i) {
    const AddSample& s = samples[static_cast<std::size_t>(i)];
    x(i, 0) = 1.0;
    x(i, 1) = double(s.m) * double(s.n);
    y[static_cast<std::size_t>(i)] = s.seconds;
  }
  const auto w = least_squares(x, y);
  return AddCostModel{w[0], w[1]};
}

GemmCostModel measure_gemm_cost_model(index_t max_size, int reps) {
  std::vector<GemmSample> samples;
  Rng rng(202);
  const index_t sizes[] = {max_size / 4, max_size / 2, (3 * max_size) / 4,
                           max_size};
  // Square and skewed shapes so the mkn and surface terms decouple.
  for (const index_t s : sizes) {
    const std::vector<std::array<index_t, 3>> shapes = {
        {s, s, s}, {s / 2, s, s}, {s, s / 2, s}, {s, s, s / 2}};
    for (const auto& sh : shapes) {
      Matrix a = random_matrix(sh[0], sh[1], rng);
      Matrix b = random_matrix(sh[1], sh[2], rng);
      Matrix c(sh[0], sh[2]);
      c.fill(0.0);
      const double t = time_min(
          [&] {
            blas::dgemm(Trans::no, Trans::no, sh[0], sh[2], sh[1], 1.0,
                        a.data(), a.ld(), b.data(), b.ld(), 0.0, c.data(),
                        c.ld());
          },
          reps);
      samples.push_back({sh[0], sh[1], sh[2], t});
    }
  }
  return fit_gemm_cost_model(samples);
}

AddCostModel measure_add_cost_model(index_t max_size, int reps) {
  std::vector<AddSample> samples;
  Rng rng(203);
  for (index_t s = max_size / 4; s <= max_size; s += max_size / 4) {
    Matrix x = random_matrix(s, s, rng);
    Matrix y = random_matrix(s, s, rng);
    Matrix d(s, s);
    const double t = time_min(
        [&] { core::add(x.view(), y.view(), d.view()); }, reps);
    samples.push_back({s, s, t});
  }
  return fit_add_cost_model(samples);
}

bool model_standard_preferred(const GemmCostModel& gemm,
                              const AddCostModel& add, index_t m, index_t k,
                              index_t n) {
  // The models are continuous, so half-sizes are real-valued (the paper's
  // Section 2 analysis treats dimensions the same way).
  const double m2 = double(m) / 2.0, k2 = double(k) / 2.0,
               n2 = double(n) / 2.0;
  const double standard = gemm.predict(m, k, n);
  const double one_level =
      7.0 * (gemm.c0 + gemm.mu * m2 * k2 * n2 +
             gemm.nu * (m2 * k2 + k2 * n2 + m2 * n2)) +
      4.0 * (add.c1 + add.gamma * m2 * k2) +
      4.0 * (add.c1 + add.gamma * k2 * n2) +
      7.0 * (add.c1 + add.gamma * m2 * n2);
  return standard <= one_level;
}

core::CutoffCriterion criterion_from_models(const GemmCostModel& gemm,
                                            const AddCostModel& add) {
  // Parameterized taus from the closed form (see header).
  const double mu = gemm.mu > 0.0 ? gemm.mu : 1e-30;
  const double tau_mn = (6.0 * gemm.nu + 8.0 * add.gamma) / mu;
  const double tau_k = (6.0 * gemm.nu + 14.0 * add.gamma) / mu;
  // Square crossover including the constant terms, found numerically.
  index_t tau_sq = 2;
  for (index_t m = 2; m <= (index_t{1} << 16); m *= 2) {
    if (!model_standard_preferred(gemm, add, m, m, m)) break;
    tau_sq = m;
  }
  // Refine within the bracketing octave.
  index_t lo = tau_sq, hi = tau_sq * 2;
  while (lo + 1 < hi) {
    const index_t mid = (lo + hi) / 2;
    if (model_standard_preferred(gemm, add, mid, mid, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double floor_tau = 2.0;
  return core::CutoffCriterion::hybrid(
      std::max(floor_tau, double(lo)), std::max(floor_tau, tau_mn),
      std::max(floor_tau, tau_k), std::max(floor_tau, tau_mn));
}

}  // namespace strassen::tuning
