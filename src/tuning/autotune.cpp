#include "tuning/autotune.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <type_traits>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/kernels.hpp"
#include "core/dgefmm.hpp"
#include "core/sgefmm.hpp"
#include "parallel/parallel_strassen.hpp"
#include "parallel/task_dag.hpp"
#include "support/errors.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"
#include "support/timing.hpp"

namespace strassen::tuning {

namespace {

template <class T>
MatrixT<T> random_matrix_t(index_t m, index_t n, Rng& rng) {
  if constexpr (std::is_same_v<T, float>) {
    return random_matrix_f(m, n, rng);
  } else {
    return random_matrix(m, n, rng);
  }
}

template <class T>
void gemm_t(index_t m, index_t n, index_t k, T alpha, const T* a, index_t lda,
            const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  if constexpr (std::is_same_v<T, float>) {
    blas::sgemm(Trans::no, Trans::no, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc);
  } else {
    blas::dgemm(Trans::no, Trans::no, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc);
  }
}

template <class T>
int gefmm_t(index_t m, index_t n, index_t k, T alpha, const T* a, index_t lda,
            const T* b, index_t ldb, T beta, T* c, index_t ldc,
            const core::GefmmConfigT<T>& cfg) {
  if constexpr (std::is_same_v<T, float>) {
    return core::sgefmm(Trans::no, Trans::no, m, n, k, alpha, a, lda, b, ldb,
                        beta, c, ldc, cfg);
  } else {
    return core::dgefmm(Trans::no, Trans::no, m, n, k, alpha, a, lda, b, ldb,
                        beta, c, ldc, cfg);
  }
}

template <class T>
int gefmm_parallel_t(index_t m, index_t n, index_t k, T alpha, const T* a,
                     index_t lda, const T* b, index_t ldb, T beta, T* c,
                     index_t ldc, const parallel::ParallelGefmmConfigT<T>& cfg) {
  if constexpr (std::is_same_v<T, float>) {
    return parallel::sgefmm_parallel(Trans::no, Trans::no, m, n, k, alpha, a,
                                     lda, b, ldb, beta, c, ldc, cfg);
  } else {
    return parallel::dgefmm_parallel(Trans::no, Trans::no, m, n, k, alpha, a,
                                     lda, b, ldb, beta, c, ldc, cfg);
  }
}

template <class T>
count_t workspace_t(index_t m, index_t n, index_t k, T beta,
                    const core::GefmmConfigT<T>& cfg) {
  if constexpr (std::is_same_v<T, float>) {
    return core::sgefmm_workspace_floats(m, n, k, beta, cfg);
  } else {
    return core::dgefmm_workspace_doubles(m, n, k, beta, cfg);
  }
}

// Element-generic twin of tuning::measured_ratio (crossover.cpp): times the
// plain GEMM against one level of fixed-depth recursion, so the eq.-15
// search functions can run in either precision against their own kernels.
template <class T>
RatioFn measured_ratio_t(const CrossoverOptions& opts) {
  return [opts](index_t m, index_t k, index_t n) {
    Rng rng(static_cast<std::uint64_t>(m * 7919 + k * 131 + n));
    MatrixT<T> a = random_matrix_t<T>(m, k, rng);
    MatrixT<T> b = random_matrix_t<T>(k, n, rng);
    MatrixT<T> c = random_matrix_t<T>(m, n, rng);
    const T alpha = static_cast<T>(opts.alpha);
    const T beta = static_cast<T>(opts.beta);

    core::GefmmConfigT<T> one_level;
    one_level.cutoff = core::CutoffCriterion::fixed_depth(1);
    ArenaT<T> arena(
        static_cast<std::size_t>(workspace_t<T>(m, n, k, beta, one_level)));
    one_level.workspace = &arena;

    const double t_gemm = time_min(
        [&] {
          gemm_t<T>(m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
                    c.data(), c.ld());
        },
        opts.reps);
    const double t_strassen = time_min(
        [&] {
          [[maybe_unused]] const int info =
              gefmm_t<T>(m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(),
                         beta, c.data(), c.ld(), one_level);
          assert(info == 0);
        },
        opts.reps);
    return t_gemm / t_strassen;
  };
}

template <class T>
core::CutoffCriterion tune_hybrid_t(const CrossoverOptions& opts) {
  const RatioFn ratio = measured_ratio_t<T>(opts);
  const SquareCrossover sq = find_square_crossover(opts, ratio);
  const RectangularParams rect = find_rectangular_params(opts, ratio);
  return core::CutoffCriterion::hybrid(
      static_cast<double>(std::max<index_t>(sq.tau, 2)),
      static_cast<double>(std::max<index_t>(rect.tau_m, 2)),
      static_cast<double>(std::max<index_t>(rect.tau_k, 2)),
      static_cast<double>(std::max<index_t>(rect.tau_n, 2)));
}

// Crossover reduction for an "alternative schedule vs incumbent" sweep
// where the alternative may simply never win in range: 0 then (the
// "never" sentinel), instead of crossover_from_sweep's last swept size
// (which would extrapolate a win above the range).
double crossover_or_never(const std::vector<SweepPoint>& sweep) {
  bool any_win = false;
  for (const SweepPoint& p : sweep) any_win = any_win || p.ratio > 1.0;
  if (!any_win) return 0;
  return static_cast<double>(std::max<index_t>(crossover_from_sweep(sweep), 1));
}

// One measured point of the scheme sweep: wall time of every schedule at
// order s, all drawing from pre-reserved workspace so the timed region is
// pure compute.
struct SchemeTimes {
  double gemm = 0;
  double fused1 = 0;
  double fused2 = 0;
  double hybrid = 0;
  double dag = 0;
};

template <class T>
SchemeTimes time_schemes(index_t s, const core::CutoffCriterion& cutoff,
                         const AutotuneOptions& opts) {
  SchemeTimes out;
  Rng rng(static_cast<std::uint64_t>(s) * 2654435761u + 17);
  MatrixT<T> a = random_matrix_t<T>(s, s, rng);
  MatrixT<T> b = random_matrix_t<T>(s, s, rng);
  MatrixT<T> c = random_matrix_t<T>(s, s, rng);
  const T alpha = T(1);
  const T beta = T(0);

  core::GefmmConfigT<T> fused1;
  fused1.cutoff = cutoff;
  fused1.scheme = core::Scheme::fused;
  fused1.fused_levels = 1;
  core::GefmmConfigT<T> fused2 = fused1;
  fused2.fused_levels = 2;
  // Classic eq.-15 hybrid recursion: the fused schedules cap at two levels,
  // but this one keeps splitting with the problem, so at large orders it is
  // the serial schedule to beat.
  core::GefmmConfigT<T> hybrid;
  hybrid.cutoff = cutoff;
  hybrid.scheme = core::Scheme::automatic;

  ArenaT<T> arena(static_cast<std::size_t>(
      std::max({workspace_t<T>(s, s, s, beta, fused1),
                workspace_t<T>(s, s, s, beta, fused2),
                workspace_t<T>(s, s, s, beta, hybrid)})));
  fused1.workspace = &arena;
  fused2.workspace = &arena;
  hybrid.workspace = &arena;

  parallel::ParallelGefmmConfigT<T> pcfg;
  pcfg.cutoff = cutoff;
  pcfg.scheme = core::Scheme::fused;
  pcfg.threads = opts.dag_threads;
  const parallel::DagPlan plan = parallel::plan_dag(s, s, s, pcfg);
  ArenaT<T> parena(static_cast<std::size_t>(plan.workspace));
  pcfg.workspace = &parena;

  // Untimed warmup: first contact with the fresh matrices and the
  // persistent pack buffers (page faults, lazy kernel dispatch) must not
  // land inside the first timed schedule -- at reps == 1 it would bias
  // every ratio toward whichever schedule happens to run second.
  gemm_t<T>(s, s, s, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
            c.data(), c.ld());

  out.gemm = time_min(
      [&] {
        gemm_t<T>(s, s, s, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
                  c.data(), c.ld());
      },
      opts.reps);
  const auto run = [&](const core::GefmmConfigT<T>& cfg) {
    [[maybe_unused]] const int info =
        gefmm_t<T>(s, s, s, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
                   c.data(), c.ld(), cfg);
    assert(info == 0);
  };
  out.fused1 = time_min([&] { run(fused1); }, opts.reps);
  out.fused2 = time_min([&] { run(fused2); }, opts.reps);
  out.hybrid = time_min([&] { run(hybrid); }, opts.reps);
  out.dag = time_min(
      [&] {
        [[maybe_unused]] const int info =
            gefmm_parallel_t<T>(s, s, s, alpha, a.data(), a.ld(), b.data(),
                                b.ld(), beta, c.data(), c.ld(), pcfg);
        assert(info == 0);
      },
      opts.reps);
  return out;
}

template <class T>
TunedCriteria autotune_t(const AutotuneOptions& opts) {
  TunedCriteria out;
  out.kernel = blas::active_kernel_t<T>().name;
  out.elem = std::is_same_v<T, float> ? "f32" : "f64";
  if (opts.tune_cutoffs) {
    CrossoverOptions beta0 = opts.eq15;
    beta0.alpha = 1.0;
    beta0.beta = 0.0;
    out.beta_zero = tune_hybrid_t<T>(beta0);
    CrossoverOptions general = opts.eq15;
    general.alpha = 1.0;
    general.beta = 1.0;
    out.general = tune_hybrid_t<T>(general);
  }

  // Scheme sweep: geometric sizes (x1.5, rounded to a multiple of 8 so
  // the top levels always split evenly), every schedule timed at each.
  std::vector<SweepPoint> fused_sweep;    // gemm vs fused-L1
  std::vector<SweepPoint> fused2_sweep;   // fused-L1 vs fused-L2
  std::vector<SweepPoint> hybrid_sweep;   // best fused vs classic hybrid
  std::vector<SweepPoint> dag_sweep;      // best serial vs DAG
  const index_t min_size = std::max<index_t>(opts.min_size, 32);
  for (index_t s = min_size; s <= opts.max_size;
       s = std::max<index_t>((s + s / 2) / 8 * 8, s + 8)) {
    const SchemeTimes t = time_schemes<T>(s, out.beta_zero, opts);
    const double best_fused = std::min(t.fused1, t.fused2);
    fused_sweep.push_back({s, t.gemm / t.fused1});
    fused2_sweep.push_back({s, t.fused1 / t.fused2});
    hybrid_sweep.push_back({s, best_fused / t.hybrid});
    dag_sweep.push_back({s, std::min(best_fused, t.hybrid) / t.dag});
  }
  // tau_fused extrapolates past the sweep in Strassen's favour (the
  // asymptotics guarantee a crossover exists); the alternative-schedule
  // thresholds use the "never" sentinel instead.
  out.tau_fused =
      static_cast<double>(std::max<index_t>(crossover_from_sweep(fused_sweep), 1));
  out.tau_fused2 = crossover_or_never(fused2_sweep);
  out.tau_hybrid = crossover_or_never(hybrid_sweep);
  out.tau_dag = crossover_or_never(dag_sweep);
  out.threads = opts.dag_threads != 0
                    ? static_cast<int>(opts.dag_threads)
                    : static_cast<int>(
                          std::max<std::size_t>(parallel::global_pool().size(),
                                                1));
  return out;
}

}  // namespace

TunedCriteria autotune_double(const AutotuneOptions& opts) {
  return autotune_t<double>(opts);
}

TunedCriteria autotune_float(const AutotuneOptions& opts) {
  return autotune_t<float>(opts);
}

core::TunedPolicy policy_from_criteria(const TunedCriteria& criteria) {
  core::TunedPolicy policy;
  policy.beta_zero = criteria.beta_zero;
  policy.general = criteria.general;
  policy.tau_fused = criteria.tau_fused;
  policy.tau_fused2 = criteria.tau_fused2;
  policy.tau_hybrid = criteria.tau_hybrid;
  policy.tau_dag = criteria.tau_dag;
  policy.threads = criteria.threads;
  std::snprintf(policy.kernel, sizeof(policy.kernel), "%s",
                criteria.kernel.c_str());
  return policy;
}

bool install_criteria(const TunedCriteria& criteria) {
  if (!criteria.matches_active_kernel()) return false;
  const core::TunedPolicy policy = policy_from_criteria(criteria);
  if (criteria.elem == "f32") {
    core::install_tuned_policy<float>(policy);
  } else {
    core::install_tuned_policy<double>(policy);
  }
  return true;
}

TunedCriteria load_matching_criteria_file(const std::string& path,
                                          const std::string& elem_kind) {
  TunedCriteria criteria = load_criteria_file(path);
  if (!criteria.matches_element(elem_kind)) {
    throw Error("tuned-criteria file '" + path + "': tuned for elem=" +
                criteria.elem + ", wanted " + elem_kind);
  }
  if (!criteria.matches_active_kernel()) {
    const char* active = elem_kind == "f32" ? blas::active_kernel_f().name
                                            : blas::active_kernel().name;
    throw Error("tuned-criteria file '" + path + "': tuned under kernel '" +
                criteria.kernel + "' but the active dispatch is '" + active +
                "'; re-run the autotune pass");
  }
  return criteria;
}

}  // namespace strassen::tuning
