#include "tuning/autotune.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <type_traits>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/kernels.hpp"
#include "core/dgefmm.hpp"
#include "core/sgefmm.hpp"
#include "parallel/parallel_strassen.hpp"
#include "parallel/task_dag.hpp"
#include "support/errors.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"
#include "support/timing.hpp"

namespace strassen::tuning {

namespace {

template <class T>
MatrixT<T> random_matrix_t(index_t m, index_t n, Rng& rng) {
  if constexpr (std::is_same_v<T, float>) {
    return random_matrix_f(m, n, rng);
  } else {
    return random_matrix(m, n, rng);
  }
}

template <class T>
void gemm_t(index_t m, index_t n, index_t k, T alpha, const T* a, index_t lda,
            const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  if constexpr (std::is_same_v<T, float>) {
    blas::sgemm(Trans::no, Trans::no, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc);
  } else {
    blas::dgemm(Trans::no, Trans::no, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc);
  }
}

template <class T>
int gefmm_t(index_t m, index_t n, index_t k, T alpha, const T* a, index_t lda,
            const T* b, index_t ldb, T beta, T* c, index_t ldc,
            const core::GefmmConfigT<T>& cfg) {
  if constexpr (std::is_same_v<T, float>) {
    return core::sgefmm(Trans::no, Trans::no, m, n, k, alpha, a, lda, b, ldb,
                        beta, c, ldc, cfg);
  } else {
    return core::dgefmm(Trans::no, Trans::no, m, n, k, alpha, a, lda, b, ldb,
                        beta, c, ldc, cfg);
  }
}

template <class T>
int gefmm_parallel_t(index_t m, index_t n, index_t k, T alpha, const T* a,
                     index_t lda, const T* b, index_t ldb, T beta, T* c,
                     index_t ldc, const parallel::ParallelGefmmConfigT<T>& cfg) {
  if constexpr (std::is_same_v<T, float>) {
    return parallel::sgefmm_parallel(Trans::no, Trans::no, m, n, k, alpha, a,
                                     lda, b, ldb, beta, c, ldc, cfg);
  } else {
    return parallel::dgefmm_parallel(Trans::no, Trans::no, m, n, k, alpha, a,
                                     lda, b, ldb, beta, c, ldc, cfg);
  }
}

template <class T>
count_t workspace_t(index_t m, index_t n, index_t k, T beta,
                    const core::GefmmConfigT<T>& cfg) {
  if constexpr (std::is_same_v<T, float>) {
    return core::sgefmm_workspace_floats(m, n, k, beta, cfg);
  } else {
    return core::dgefmm_workspace_doubles(m, n, k, beta, cfg);
  }
}

// Element-generic twin of tuning::measured_ratio (crossover.cpp): times the
// plain GEMM against one level of fixed-depth recursion, so the eq.-15
// search functions can run in either precision against their own kernels.
template <class T>
RatioFn measured_ratio_t(const CrossoverOptions& opts) {
  return [opts](index_t m, index_t k, index_t n) {
    Rng rng(static_cast<std::uint64_t>(m * 7919 + k * 131 + n));
    MatrixT<T> a = random_matrix_t<T>(m, k, rng);
    MatrixT<T> b = random_matrix_t<T>(k, n, rng);
    MatrixT<T> c = random_matrix_t<T>(m, n, rng);
    const T alpha = static_cast<T>(opts.alpha);
    const T beta = static_cast<T>(opts.beta);

    core::GefmmConfigT<T> one_level;
    one_level.cutoff = core::CutoffCriterion::fixed_depth(1);
    ArenaT<T> arena(
        static_cast<std::size_t>(workspace_t<T>(m, n, k, beta, one_level)));
    one_level.workspace = &arena;

    const double t_gemm = time_min(
        [&] {
          gemm_t<T>(m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
                    c.data(), c.ld());
        },
        opts.reps);
    const double t_strassen = time_min(
        [&] {
          [[maybe_unused]] const int info =
              gefmm_t<T>(m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(),
                         beta, c.data(), c.ld(), one_level);
          assert(info == 0);
        },
        opts.reps);
    return t_gemm / t_strassen;
  };
}

template <class T>
core::CutoffCriterion tune_hybrid_t(const CrossoverOptions& opts) {
  const RatioFn ratio = measured_ratio_t<T>(opts);
  const SquareCrossover sq = find_square_crossover(opts, ratio);
  const RectangularParams rect = find_rectangular_params(opts, ratio);
  return core::CutoffCriterion::hybrid(
      static_cast<double>(std::max<index_t>(sq.tau, 2)),
      static_cast<double>(std::max<index_t>(rect.tau_m, 2)),
      static_cast<double>(std::max<index_t>(rect.tau_k, 2)),
      static_cast<double>(std::max<index_t>(rect.tau_n, 2)));
}

// Crossover reduction for an "alternative schedule vs incumbent" sweep
// where the alternative may simply never win in range: 0 then (the
// "never" sentinel), instead of crossover_from_sweep's last swept size
// (which would extrapolate a win above the range).
double crossover_or_never(const std::vector<SweepPoint>& sweep) {
  bool any_win = false;
  for (const SweepPoint& p : sweep) any_win = any_win || p.ratio > 1.0;
  if (!any_win) return 0;
  return static_cast<double>(std::max<index_t>(crossover_from_sweep(sweep), 1));
}

// Times every candidate schedule at order s, all drawing from pre-reserved
// workspace so the timed region is pure compute.
template <class T>
SchemePoint time_schemes(index_t s, const core::CutoffCriterion& cutoff,
                         const AutotuneOptions& opts) {
  SchemePoint out;
  out.s = s;
  Rng rng(static_cast<std::uint64_t>(s) * 2654435761u + 17);
  MatrixT<T> a = random_matrix_t<T>(s, s, rng);
  MatrixT<T> b = random_matrix_t<T>(s, s, rng);
  MatrixT<T> c = random_matrix_t<T>(s, s, rng);
  const T alpha = T(1);
  const T beta = T(0);

  core::GefmmConfigT<T> fused1;
  fused1.cutoff = cutoff;
  fused1.scheme = core::Scheme::fused;
  fused1.fused_levels = 1;
  core::GefmmConfigT<T> fused2 = fused1;
  fused2.fused_levels = 2;
  // Classic eq.-15 hybrid recursion: the fused schedules cap at two levels,
  // but this one keeps splitting with the problem, so at large orders it is
  // the serial schedule to beat.
  core::GefmmConfigT<T> hybrid;
  hybrid.cutoff = cutoff;
  hybrid.scheme = core::Scheme::automatic;
  // Forced STRASSEN2: at beta == 0 the automatic hybrid resolves to
  // STRASSEN1, so this is a genuinely distinct candidate -- the one that
  // won the m = 4096 shape the hybrid-only sweep mis-routed.
  core::GefmmConfigT<T> s2cfg;
  s2cfg.cutoff = cutoff;
  s2cfg.scheme = core::Scheme::strassen2;

  ArenaT<T> arena(static_cast<std::size_t>(
      std::max({workspace_t<T>(s, s, s, beta, fused1),
                workspace_t<T>(s, s, s, beta, fused2),
                workspace_t<T>(s, s, s, beta, hybrid),
                workspace_t<T>(s, s, s, beta, s2cfg)})));
  fused1.workspace = &arena;
  fused2.workspace = &arena;
  hybrid.workspace = &arena;
  s2cfg.workspace = &arena;

  parallel::ParallelGefmmConfigT<T> pcfg;
  pcfg.cutoff = cutoff;
  pcfg.scheme = core::Scheme::fused;
  pcfg.threads = opts.dag_threads;
  const parallel::DagPlan plan = parallel::plan_dag(s, s, s, pcfg);
  ArenaT<T> parena(static_cast<std::size_t>(plan.workspace));
  pcfg.workspace = &parena;

  // Untimed warmup: first contact with the fresh matrices and the
  // persistent pack buffers (page faults, lazy kernel dispatch) must not
  // land inside the first timed schedule -- at reps == 1 it would bias
  // every ratio toward whichever schedule happens to run second.
  gemm_t<T>(s, s, s, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
            c.data(), c.ld());

  out.gemm = time_min(
      [&] {
        gemm_t<T>(s, s, s, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
                  c.data(), c.ld());
      },
      opts.reps);
  const auto run = [&](const core::GefmmConfigT<T>& cfg) {
    [[maybe_unused]] const int info =
        gefmm_t<T>(s, s, s, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
                   c.data(), c.ld(), cfg);
    assert(info == 0);
  };
  out.fused1 = time_min([&] { run(fused1); }, opts.reps);
  out.fused2 = time_min([&] { run(fused2); }, opts.reps);
  out.hybrid = time_min([&] { run(hybrid); }, opts.reps);
  out.s2 = time_min([&] { run(s2cfg); }, opts.reps);
  out.dag = time_min(
      [&] {
        [[maybe_unused]] const int info =
            gefmm_parallel_t<T>(s, s, s, alpha, a.data(), a.ld(), b.data(),
                                b.ld(), beta, c.data(), c.ld(), pcfg);
        assert(info == 0);
      },
      opts.reps);
  return out;
}

template <class T>
TunedCriteria autotune_t(const AutotuneOptions& opts) {
  TunedCriteria out;
  out.kernel = blas::active_kernel_t<T>().name;
  out.elem = std::is_same_v<T, float> ? "f32" : "f64";
  if (opts.tune_cutoffs) {
    CrossoverOptions beta0 = opts.eq15;
    beta0.alpha = 1.0;
    beta0.beta = 0.0;
    out.beta_zero = tune_hybrid_t<T>(beta0);
    CrossoverOptions general = opts.eq15;
    general.alpha = 1.0;
    general.beta = 1.0;
    out.general = tune_hybrid_t<T>(general);
  }

  // Scheme sweep: geometric sizes (x1.5, rounded to a multiple of 8 so
  // the top levels always split evenly), every schedule timed at each.
  std::vector<SchemePoint> sweep;
  const index_t min_size = std::max<index_t>(opts.min_size, 32);
  for (index_t s = min_size; s <= opts.max_size;
       s = std::max<index_t>((s + s / 2) / 8 * 8, s + 8)) {
    sweep.push_back(time_schemes<T>(s, out.beta_zero, opts));
  }
  SchemeCrossovers x = reduce_scheme_sweep(sweep);
  // Midpoint refinement of the hybrid crossover: the geometric stride
  // leaves a ~50% size gap around the flip, and tau_hybrid gates the
  // biggest schedule change of the dispatch (capped fused -> growing
  // recursion). One extra measurement inside the bracketing interval
  // halves the region where near-crossover shapes can be mis-routed.
  if (x.tau_hybrid > 0) {
    for (std::size_t i = 0; i + 1 < sweep.size(); ++i) {
      if (static_cast<double>(sweep[i].s) > x.tau_hybrid ||
          static_cast<double>(sweep[i + 1].s) <= x.tau_hybrid) {
        continue;
      }
      const index_t mid = (sweep[i].s + sweep[i + 1].s) / 2 / 8 * 8;
      if (mid > sweep[i].s && mid < sweep[i + 1].s) {
        sweep.insert(sweep.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                     time_schemes<T>(mid, out.beta_zero, opts));
        x = reduce_scheme_sweep(sweep);
      }
      break;
    }
  }
  out.tau_fused = x.tau_fused;
  out.tau_fused2 = x.tau_fused2;
  out.tau_hybrid = x.tau_hybrid;
  out.tau_s2 = x.tau_s2;
  out.tau_dag = x.tau_dag;
  out.threads = opts.dag_threads != 0
                    ? static_cast<int>(opts.dag_threads)
                    : static_cast<int>(
                          std::max<std::size_t>(parallel::global_pool().size(),
                                                1));
  return out;
}

}  // namespace

SchemeCrossovers reduce_scheme_sweep(const std::vector<SchemePoint>& sweep) {
  SchemeCrossovers out;
  if (sweep.empty()) return out;
  // Five pairwise ratio sweeps, each "incumbent / challenger" so ratio > 1
  // means the challenger won at that size. The hybrid sweep compares the
  // best capped-fused schedule against the best classic recursion (automatic
  // hybrid OR forced STRASSEN2) -- comparing against the automatic hybrid
  // alone is exactly the bug that mis-routed m = 4096: the regime flip was
  // dated by a recursion variant that was itself the measured-worst one.
  std::vector<SweepPoint> fused_sweep;   // gemm vs fused-L1
  std::vector<SweepPoint> fused2_sweep;  // fused-L1 vs fused-L2
  std::vector<SweepPoint> hybrid_sweep;  // best fused vs best classic
  std::vector<SweepPoint> s2_sweep;      // automatic hybrid vs forced S2
  std::vector<SweepPoint> dag_sweep;     // best serial vs DAG
  for (const SchemePoint& t : sweep) {
    const double best_fused = std::min(t.fused1, t.fused2);
    const double best_classic = std::min(t.hybrid, t.s2);
    fused_sweep.push_back({t.s, t.gemm / t.fused1});
    fused2_sweep.push_back({t.s, t.fused1 / t.fused2});
    hybrid_sweep.push_back({t.s, best_fused / best_classic});
    s2_sweep.push_back({t.s, t.hybrid / t.s2});
    dag_sweep.push_back({t.s, std::min(best_fused, best_classic) / t.dag});
  }
  // tau_fused extrapolates past the sweep in Strassen's favour (the
  // asymptotics guarantee a crossover exists); the alternative-schedule
  // thresholds use the "never" sentinel instead.
  out.tau_fused = static_cast<double>(
      std::max<index_t>(crossover_from_sweep(fused_sweep), 1));
  out.tau_fused2 = crossover_or_never(fused2_sweep);
  out.tau_hybrid = crossover_or_never(hybrid_sweep);
  out.tau_s2 = crossover_or_never(s2_sweep);
  out.tau_dag = crossover_or_never(dag_sweep);
  // tau_s2 only means anything inside the classic regime (tuned_path_for
  // consults it after the tau_hybrid gate). Clamp it up to tau_hybrid when
  // STRASSEN2 already wins at the regime boundary, and drop it entirely
  // when the classic recursion never wins at all.
  if (out.tau_hybrid <= 0) {
    out.tau_s2 = 0;
  } else if (out.tau_s2 > 0 && out.tau_s2 < out.tau_hybrid) {
    out.tau_s2 = out.tau_hybrid;
  }
  return out;
}

TunedCriteria autotune_double(const AutotuneOptions& opts) {
  return autotune_t<double>(opts);
}

TunedCriteria autotune_float(const AutotuneOptions& opts) {
  return autotune_t<float>(opts);
}

core::TunedPolicy policy_from_criteria(const TunedCriteria& criteria) {
  core::TunedPolicy policy;
  policy.beta_zero = criteria.beta_zero;
  policy.general = criteria.general;
  policy.tau_fused = criteria.tau_fused;
  policy.tau_fused2 = criteria.tau_fused2;
  policy.tau_hybrid = criteria.tau_hybrid;
  policy.tau_s2 = criteria.tau_s2;
  policy.tau_dag = criteria.tau_dag;
  policy.threads = criteria.threads;
  std::snprintf(policy.kernel, sizeof(policy.kernel), "%s",
                criteria.kernel.c_str());
  return policy;
}

bool install_criteria(const TunedCriteria& criteria) {
  if (!criteria.matches_active_kernel()) return false;
  const core::TunedPolicy policy = policy_from_criteria(criteria);
  if (criteria.elem == "f32") {
    core::install_tuned_policy<float>(policy);
  } else {
    core::install_tuned_policy<double>(policy);
  }
  return true;
}

TunedCriteria load_matching_criteria_file(const std::string& path,
                                          const std::string& elem_kind) {
  TunedCriteria criteria = load_criteria_file(path);
  if (!criteria.matches_element(elem_kind)) {
    throw Error("tuned-criteria file '" + path + "': tuned for elem=" +
                criteria.elem + ", wanted " + elem_kind);
  }
  if (!criteria.matches_active_kernel()) {
    const char* active = elem_kind == "f32" ? blas::active_kernel_f().name
                                            : blas::active_kernel().name;
    throw Error("tuned-criteria file '" + path + "': tuned under kernel '" +
                criteria.kernel + "' but the active dispatch is '" + active +
                "'; re-run the autotune pass");
  }
  return criteria;
}

}  // namespace strassen::tuning
