// Tuned-parameter sets and their persistence.
//
// Section 4.2: "the experiments were run using alpha = 1 and beta = 0 ...
// and the values of tau_m, tau_k, and tau_n may change for the general
// case. Our code allows user testing and specification of two sets of
// parameters to handle both cases." This module implements exactly that:
// a pair of hybrid criteria (one tuned with beta = 0, one with beta != 0),
// selection by the call's beta, and a plain-text file format so a one-off
// tuning run configures every later run on the machine.
#pragma once

#include <iosfwd>
#include <string>

#include "core/cutoff.hpp"
#include "tuning/crossover.hpp"

namespace strassen::tuning {

/// The two parameter sets of Section 4.2.
struct TunedCriteria {
  core::CutoffCriterion beta_zero =
      core::CutoffCriterion::paper_default(blas::Machine::rs6000);
  core::CutoffCriterion general = beta_zero;

  /// Micro-kernel variant (blas::KernelInfo::name) the tuning ran under,
  /// empty for files written before kernel dispatch existed. The crossover
  /// point is a property of the DGEMM speed, which changes with the kernel,
  /// so a criteria file tuned under one kernel is stale under another.
  std::string kernel;

  /// Element type the tuning ran in: "f64" or "f32". The crossover point
  /// moves with the element width (a float GEMM runs different kernels at
  /// different flop rates and half the memory traffic), so cutoffs tuned in
  /// one precision must never configure the other. Files written before
  /// sgefmm existed carry no record and load as "f64" -- the only precision
  /// the tuner produced then.
  std::string elem = "f64";

  /// Scheme crossovers measured by the autotune pass (tuning/autotune.hpp),
  /// as equivalent orders s = cbrt(m*k*n); 0 = unmeasured / never won.
  /// These feed core::TunedPolicy: plain GEMM at or below tau_fused, two
  /// fused levels above tau_fused2, the classic eq.-15 hybrid recursion
  /// above tau_hybrid (forced STRASSEN2 instead of the automatic hybrid
  /// above tau_s2 within that regime), the task-DAG above tau_dag. Files
  /// written before a threshold existed load it as 0 -- the "never won"
  /// sentinel -- so old files keep their old routing.
  double tau_fused = 0;
  double tau_fused2 = 0;
  double tau_hybrid = 0;
  double tau_s2 = 0;
  double tau_dag = 0;
  /// Pool size the DAG crossover was measured with (0 = not measured).
  int threads = 0;

  /// The criterion appropriate for a call with this beta.
  const core::CutoffCriterion& select(double beta) const {
    return beta == 0.0 ? beta_zero : general;
  }

  /// False when this file was tuned under a different micro-kernel than
  /// the one the active dispatch would run for its element type. A missing
  /// kernel record is a mismatch too (hard miss): a file that cannot prove
  /// which GEMM its crossovers were measured against must not configure
  /// any -- legacy pre-dispatch files re-tune rather than silently
  /// mis-route.
  bool matches_active_kernel() const;

  /// True when this file was tuned for the given element type ("f64" or
  /// "f32"). Unlike the kernel check there is no legacy pass-through for
  /// "f32": a file without an element record is a double-tuned file.
  bool matches_element(const std::string& elem_kind) const {
    return elem == elem_kind;
  }
};

/// Runs the full tuning pipeline twice: once with (alpha, beta) = (1, 0)
/// and once with the general case (alpha = 1, beta = 1).
TunedCriteria tune_both_cases(const CrossoverOptions& opts);

/// Serializes as a small key = value text file (stable across versions;
/// unknown keys are ignored on load).
void save_criteria(const TunedCriteria& criteria, std::ostream& os);
[[nodiscard]] bool save_criteria_file(const TunedCriteria& criteria,
                                      const std::string& path);

/// Parses the format written by save_criteria. Throws strassen::Error on
/// malformed input; missing keys keep their defaults.
TunedCriteria load_criteria(std::istream& is);
TunedCriteria load_criteria_file(const std::string& path);

}  // namespace strassen::tuning
