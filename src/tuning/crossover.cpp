#include "tuning/crossover.hpp"

#include <algorithm>
#include <cassert>

#include "blas/gemm.hpp"
#include "core/dgefmm.hpp"
#include "support/random.hpp"
#include "support/timing.hpp"

namespace strassen::tuning {

index_t crossover_from_sweep(const std::vector<SweepPoint>& sweep) {
  if (sweep.empty()) return 0;
  // Ties go to DGEMM, matching eq. (7)'s "<=" (standard preferred at
  // equality).
  index_t first_win = -1;   // smallest size where Strassen wins
  index_t last_loss = -1;   // largest size where DGEMM wins
  for (const SweepPoint& p : sweep) {
    if (p.ratio <= 1.0) {
      last_loss = p.size;
    } else if (first_win < 0) {
      first_win = p.size;
    }
  }
  if (last_loss < 0) {
    // Strassen wins everywhere in the sweep: the crossover is below it.
    return sweep.front().size - 1;
  }
  if (first_win < 0) {
    // DGEMM wins everywhere.
    return sweep.back().size;
  }
  if (first_win > last_loss) {
    // Clean monotone crossover.
    return last_loss;
  }
  // Noisy interleaved region: split the difference, as the paper did when
  // it chose tau = 199 between "first faster at 176" and "always faster
  // from 214".
  return (first_win + last_loss) / 2;
}

std::vector<SweepPoint> sweep_ratio(
    const RatioFn& ratio, index_t min_size, index_t max_size, index_t step,
    const std::function<void(index_t, index_t&, index_t&, index_t&)>& shape) {
  std::vector<SweepPoint> out;
  for (index_t s = min_size; s <= max_size; s += step) {
    index_t m = 0, k = 0, n = 0;
    shape(s, m, k, n);
    out.push_back({s, ratio(m, k, n)});
  }
  return out;
}

RatioFn measured_ratio(const CrossoverOptions& opts) {
  return [opts](index_t m, index_t k, index_t n) {
    Rng rng(static_cast<std::uint64_t>(m * 7919 + k * 131 + n));
    Matrix a = random_matrix(m, k, rng);
    Matrix b = random_matrix(k, n, rng);
    Matrix c = random_matrix(m, n, rng);

    core::DgefmmConfig one_level;
    one_level.cutoff = core::CutoffCriterion::fixed_depth(1);
    Arena arena(static_cast<std::size_t>(
        core::dgefmm_workspace_doubles(m, n, k, opts.beta, one_level)));
    one_level.workspace = &arena;

    const double t_dgemm = time_min(
        [&] {
          blas::dgemm(Trans::no, Trans::no, m, n, k, opts.alpha, a.data(),
                      a.ld(), b.data(), b.ld(), opts.beta, c.data(), c.ld());
        },
        opts.reps);
    const double t_strassen = time_min(
        [&] {
          [[maybe_unused]] const int info = core::dgefmm(
              Trans::no, Trans::no, m, n, k, opts.alpha, a.data(), a.ld(),
              b.data(), b.ld(), opts.beta, c.data(), c.ld(), one_level);
          assert(info == 0);
        },
        opts.reps);
    return t_dgemm / t_strassen;
  };
}

SquareCrossover find_square_crossover(const CrossoverOptions& opts,
                                      const RatioFn& ratio) {
  SquareCrossover out;
  out.sweep = sweep_ratio(ratio, opts.min_size, opts.max_size, opts.step,
                          [](index_t s, index_t& m, index_t& k, index_t& n) {
                            m = k = n = s;
                          });
  out.tau = crossover_from_sweep(out.sweep);
  return out;
}

SquareCrossover find_square_crossover(const CrossoverOptions& opts) {
  return find_square_crossover(opts, measured_ratio(opts));
}

RectangularParams find_rectangular_params(const CrossoverOptions& opts,
                                          const RatioFn& ratio) {
  RectangularParams out;
  const index_t big = opts.fixed_large;
  auto find = [&](auto shape) {
    return crossover_from_sweep(
        sweep_ratio(ratio, opts.min_size, opts.max_size, opts.step, shape));
  };
  out.tau_m = find([big](index_t s, index_t& m, index_t& k, index_t& n) {
    m = s;
    k = n = big;
  });
  out.tau_k = find([big](index_t s, index_t& m, index_t& k, index_t& n) {
    k = s;
    m = n = big;
  });
  out.tau_n = find([big](index_t s, index_t& m, index_t& k, index_t& n) {
    n = s;
    m = k = big;
  });
  return out;
}

RectangularParams find_rectangular_params(const CrossoverOptions& opts) {
  return find_rectangular_params(opts, measured_ratio(opts));
}

core::CutoffCriterion tune_hybrid_criterion(const CrossoverOptions& opts) {
  const RatioFn ratio = measured_ratio(opts);
  const SquareCrossover sq = find_square_crossover(opts, ratio);
  const RectangularParams rect = find_rectangular_params(opts, ratio);
  return core::CutoffCriterion::hybrid(
      static_cast<double>(std::max<index_t>(sq.tau, 2)),
      static_cast<double>(std::max<index_t>(rect.tau_m, 2)),
      static_cast<double>(std::max<index_t>(rect.tau_k, 2)),
      static_cast<double>(std::max<index_t>(rect.tau_n, 2)));
}

}  // namespace strassen::tuning
