// Empirical cutoff tuning (Sections 3.4 and 4.2 of the paper).
//
// Determines, from timing measurements, the parameters of the hybrid
// cutoff criterion (eq. 15):
//  * the square crossover tau -- the matrix order past which one level of
//    Strassen recursion beats DGEMM (Figure 2, Table 2), and
//  * the rectangular parameters tau_m, tau_k, tau_n -- each found by
//    fixing the other two dimensions at a large value and sweeping the
//    third (Table 3); when two dimensions are large their terms in
//    eq. (14) are negligible, so the crossover of the swept dimension IS
//    the parameter.
//
// The search logic is separated from measurement (a RatioFn) so the tests
// can drive it with synthetic cost models; the measuring front-ends time
// real DGEMM vs. one-level DGEFMM calls on the active machine profile.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "core/cutoff.hpp"
#include "support/config.hpp"

namespace strassen::tuning {

/// ratio(m, k, n) = time(DGEMM) / time(one level of Strassen + DGEMM).
/// Values > 1 mean Strassen wins.
using RatioFn = std::function<double(index_t m, index_t k, index_t n)>;

/// One measured point of a sweep.
struct SweepPoint {
  index_t size = 0;
  double ratio = 0.0;  ///< DGEMM time / one-level Strassen time
};

/// Controls a crossover search.
struct CrossoverOptions {
  index_t min_size = 64;    ///< sweep start
  index_t max_size = 512;   ///< sweep end (paper used ~2050; scale to host)
  index_t step = 8;         ///< sweep stride
  index_t fixed_large = 768;  ///< the "two dimensions large" value (Table 3
                              ///< used 2000/1500; scale to host)
  int reps = 3;             ///< timing repetitions (minimum is kept)
  double alpha = 1.0;       ///< the paper tuned with alpha=1, beta=0
  double beta = 0.0;
};

/// Picks the crossover from a sweep. For a clean monotone sweep this is
/// the largest size where DGEMM still wins (ties included, matching
/// eq. 7's "<="); when wins and losses interleave -- the sawtooth region
/// of Figure 2 -- it returns the midpoint of the first Strassen win and
/// the last DGEMM win, which is how the paper chose tau = 199 between
/// "first faster at 176" and "always faster from 214". Returns min-1 if
/// Strassen always wins and the last size if it never does.
index_t crossover_from_sweep(const std::vector<SweepPoint>& sweep);

/// Runs a sweep of `ratio` over sizes with (m,k,n) produced by `shape`.
std::vector<SweepPoint> sweep_ratio(
    const RatioFn& ratio, index_t min_size, index_t max_size, index_t step,
    const std::function<void(index_t, index_t&, index_t&, index_t&)>& shape);

/// Measured ratio function: times blas::dgemm against one level of DGEFMM
/// recursion (fixed depth 1) on random matrices, on the active machine.
RatioFn measured_ratio(const CrossoverOptions& opts);

/// Square crossover search on the active machine profile (Figure 2 /
/// Table 2). Also returns the sweep for plotting.
struct SquareCrossover {
  index_t tau = 0;
  std::vector<SweepPoint> sweep;
};
SquareCrossover find_square_crossover(const CrossoverOptions& opts,
                                      const RatioFn& ratio);
SquareCrossover find_square_crossover(const CrossoverOptions& opts);

/// Rectangular parameter search (Table 3): tau_m with k = n = fixed_large,
/// tau_k with m = n = fixed_large, tau_n with m = k = fixed_large.
struct RectangularParams {
  index_t tau_m = 0;
  index_t tau_k = 0;
  index_t tau_n = 0;
};
RectangularParams find_rectangular_params(const CrossoverOptions& opts,
                                          const RatioFn& ratio);
RectangularParams find_rectangular_params(const CrossoverOptions& opts);

/// Full tuning pipeline: returns the hybrid criterion (eq. 15) with all
/// four parameters measured on the active machine profile.
core::CutoffCriterion tune_hybrid_criterion(const CrossoverOptions& opts);

}  // namespace strassen::tuning
