// Task-parallel top level for DGEFMM: the seven Winograd sub-products of
// the first recursion level are independent once the S/T operand sums are
// formed, so they run concurrently, each as a serial DGEFMM with its own
// workspace arena. Below the top level everything is the serial library.
//
// This trades the serial code's memory economy for parallelism (seven
// product temporaries at the top level) -- the classic Strassen
// parallelization the paper defers to future work.
#pragma once

#include <cstddef>

#include "core/types.hpp"
#include "support/config.hpp"

namespace strassen::parallel {

struct ParallelDgefmmConfig {
  core::CutoffCriterion cutoff =
      core::CutoffCriterion::paper_default(blas::active_machine());
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Schedule run inside each task. Scheme::fused switches the top level to
  /// Strassen's original seven-product form, where every product is a
  /// single fused packed-GEMM call (no S/T operand temporaries at all) and
  /// each task recurses with the fused schedule below.
  core::Scheme scheme = core::Scheme::automatic;
  /// Failure policy (DESIGN.md section 7). All task spawning and every
  /// temporary precede the combine step's first write to C, so on failure
  /// `strict` rethrows with C untouched and `fallback` degrades the whole
  /// problem to one workspace-free DGEMM. Propagated to the per-task child
  /// configs as well.
  core::FailurePolicy on_failure = core::FailurePolicy::strict;
  /// Optional instrumentation: per-task child stats are merged in, plus the
  /// driver's own fallback/fault counters.
  core::DgefmmStats* stats = nullptr;
};

/// C <- alpha * op(A) * op(B) + beta * C with the top recursion level's
/// seven products evaluated in parallel. Falls back to the serial dgefmm
/// when the cutoff says not to recurse. Returns a BLAS-style info code.
int dgefmm_parallel(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc,
                    const ParallelDgefmmConfig& cfg = ParallelDgefmmConfig{});

}  // namespace strassen::parallel
