// Task-parallel top level for DGEFMM/SGEFMM: the top one or two recursion
// levels of the fused Winograd schedule run as a dependency-aware task DAG
// (parallel/task_dag.hpp) on the shared pool's work-stealing lanes, so
// combine steps overlap with still-running products instead of waiting at
// the old seven-way barrier. Below the DAG everything is the serial
// library.
//
// This trades the serial code's memory economy for parallelism (7^L
// product temporaries at the top) -- the classic Strassen parallelization
// the paper defers to future work.
#pragma once

#include <atomic>
#include <cstddef>

#include "core/types.hpp"
#include "support/arena.hpp"
#include "support/config.hpp"

namespace strassen::parallel {

template <class T>
struct ParallelGefmmConfigT {
  core::CutoffCriterion cutoff =
      core::CutoffCriterion::paper_default(blas::active_machine());
  /// Core budget the pre-flight planner splits between DAG lanes and each
  /// product leaf's intra-GEMM fan-out (0 = the shared pool's size). Not
  /// clamped to the pool, so oversized budgets exercise wide-DAG
  /// scheduling even on small machines.
  std::size_t threads = 0;
  /// Schedule run inside each product task. Scheme::fused keeps the fused
  /// packed-GEMM path below the DAG leaves as well; every scheme's top
  /// level(s) run as fused products (no S/T operand temporaries -- sums
  /// form while packing).
  core::Scheme scheme = core::Scheme::automatic;
  /// DAG depth: 1 = 7 products / 4 combines, 2 = 49 / 16. 0 = resolve from
  /// STRASSEN_PAR_DEPTH, then automatically (2 when the budget exceeds 7
  /// and the quarter dimensions exist). Clamped to [1, 2].
  int par_depth = 0;
  /// Scheduler lanes (maximum DAG nodes in flight). 0 = resolve from
  /// STRASSEN_PAR_LANES, then min(budget, products).
  int lanes = 0;
  /// Intra-GEMM fan-out inside each product leaf. -1 = moldable split
  /// max(1, budget / lanes); 0 = the legacy whole-pool gemm_threads
  /// setting (each leaf claims the full pool -- the oversubscribing
  /// pre-DAG behaviour, kept for baseline comparison).
  int leaf_gemm_threads = -1;
  /// Optional caller-provided workspace for the single up-front
  /// reservation (product temporaries + per-lane sub-arenas). When null an
  /// exactly-sized arena is allocated internally; reusing one across calls
  /// avoids repeated allocation, as the benchmarks do. Element-typed: the
  /// float driver can only draw from a float arena.
  ArenaT<T>* workspace = nullptr;
  /// Failure policy (DESIGN.md section 7). Every acquisition -- the
  /// reservation, the DAG bookkeeping, the pack-scratch warmup -- precedes
  /// the first write to C, so on failure `strict` rethrows with C
  /// untouched and `fallback` degrades the whole problem to one
  /// workspace-free GEMM. Propagated to the per-leaf child configs.
  core::FailurePolicy on_failure = core::FailurePolicy::strict;
  /// Optional instrumentation: per-lane child stats are merged in, plus
  /// the scheduler's own counters (steals, dag_nodes, dag_lanes) and the
  /// driver's fallback/fault counters.
  core::DgefmmStats* stats = nullptr;
  /// Consult the installed auto-tuned policy (core/tuned_policy.hpp)
  /// before planning: when the measured DAG crossover says the task-DAG
  /// wins at this shape the call runs here with the tuned eq.-15 cutoffs;
  /// otherwise it routes to the serial driver with its use_tuned resolution
  /// (plain GEMM below the fused crossover, one or two fused levels above).
  /// A missing or kernel-stale policy leaves this configuration untouched.
  bool use_tuned = false;
  /// Optional cooperative cancellation token (the serving front-end's
  /// per-request token). Checked at every task-DAG node boundary through a
  /// single-transition decision: cancellation is honored -- the call
  /// throws CanceledError with beta*C bit-identical -- only if it wins the
  /// race against the first combine node (the first write to C); once any
  /// combine has committed, the remaining graph runs to completion and the
  /// call succeeds normally. C is therefore never left half-written by a
  /// cancel. CanceledError is rethrown under *both* failure policies
  /// (a canceled request must not burn a full fallback GEMM).
  const std::atomic<bool>* cancel = nullptr;
};

using ParallelDgefmmConfig = ParallelGefmmConfigT<double>;
using ParallelSgefmmConfig = ParallelGefmmConfigT<float>;

/// C <- alpha * op(A) * op(B) + beta * C with the top recursion level(s)
/// evaluated as a work-stealing task DAG. The result is bitwise identical
/// for every thread count, lane count, and steal order (combines apply
/// their terms in the verified schedule's fixed order). Falls back to the
/// serial dgefmm when the cutoff says not to recurse. Returns a BLAS-style
/// info code.
int dgefmm_parallel(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc,
                    const ParallelDgefmmConfig& cfg = ParallelDgefmmConfig{});

/// Single-precision twin of dgefmm_parallel: the float instantiation of
/// the same planner, carving phase, and work-stealing executor, with the
/// same bitwise-determinism guarantee across thread counts.
int sgefmm_parallel(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, float alpha, const float* a, index_t lda,
                    const float* b, index_t ldb, float beta, float* c,
                    index_t ldc,
                    const ParallelSgefmmConfig& cfg = ParallelSgefmmConfig{});

}  // namespace strassen::parallel
