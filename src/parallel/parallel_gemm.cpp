#include "parallel/parallel_gemm.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "blas/gemm.hpp"
#include "support/thread_pool.hpp"

namespace strassen::parallel {

void dgemm_parallel(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc, std::size_t threads) {
  if (m == 0 || n == 0) return;
  ThreadPool& pool = global_pool();
  const std::size_t workers =
      threads == 0 ? pool.size() : std::min(threads, pool.size());
  // Below this, thread dispatch costs more than it saves.
  const index_t min_panel = 32;
  const index_t panels = std::min<index_t>(
      static_cast<index_t>(workers), std::max<index_t>(1, n / min_panel));
  if (panels <= 1) {
    blas::dgemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }

  const ConstView av = make_op_view(transa, a, is_trans(transa) ? k : m,
                                    is_trans(transa) ? m : k, lda);
  const ConstView bv = make_op_view(transb, b, is_trans(transb) ? n : k,
                                    is_trans(transb) ? k : n, ldb);
  MutView cv = make_view(c, m, n, ldc);

  std::vector<std::function<void()>> tasks;
  const index_t chunk = (n + panels - 1) / panels;
  for (index_t j0 = 0; j0 < n; j0 += chunk) {
    const index_t cols = std::min(chunk, n - j0);
    tasks.push_back([=] {
      blas::gemm_view(alpha, av, bv.block(0, j0, k, cols), beta,
                      cv.block(0, j0, m, cols));
    });
  }
  pool.run_batch(std::move(tasks));
}

}  // namespace strassen::parallel
