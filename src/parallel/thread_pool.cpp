#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "support/errors.hpp"
#include "support/faultinject.hpp"

namespace strassen::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      if (faultinject::should_fail(faultinject::Site::pool_task)) {
        throw TaskError("fault injection: thread-pool task failed to start");
      }
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0 && queue_.empty()) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    first_error_ = nullptr;
    in_flight_ += tasks.size();
    for (auto& t : tasks) queue_.push(std::move(t));
  }
  cv_task_.notify_all();
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return in_flight_ == 0 && queue_.empty(); });
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace strassen::parallel
