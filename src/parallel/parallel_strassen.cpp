#include "parallel/parallel_strassen.hpp"

#include "blas/gemm.hpp"
#include "blas/kernels.hpp"
#include "blas/packed_loop.hpp"
#include "core/dgefmm.hpp"
#include "parallel/task_dag.hpp"
#include "support/faultinject.hpp"
#include "support/thread_pool.hpp"

namespace strassen::parallel {

int dgefmm_parallel(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc, const ParallelDgefmmConfig& cfg) {
  // Serial fallback covers argument checking, degenerate cases, and
  // problems the cutoff sends straight to DGEMM (with the caller's failure
  // policy and stats passed through).
  if (m < 2 || k < 2 || n < 2 || alpha == 0.0 ||
      cfg.cutoff.stop(m, k, n, 0)) {
    core::DgefmmConfig serial;
    serial.cutoff = cfg.cutoff;
    serial.scheme = cfg.scheme;
    serial.on_failure = cfg.on_failure;
    serial.stats = cfg.stats;
    return core::dgefmm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                        c, ldc, serial);
  }
  // Argument checking via a zero-work call (alpha == 0 quick-returns with
  // beta == 1, so C stays untouched and no workspace is acquired).
  {
    core::DgefmmConfig serial;
    serial.cutoff = cfg.cutoff;
    const int info = core::dgefmm(transa, transb, m, n, k, 0.0, a, lda, b,
                                  ldb, 1.0, c, ldc, serial);
    if (info != 0) return info;
  }

  const long faults_before = faultinject::injected_total();
  const DagPlan plan = plan_dag(m, n, k, cfg);
  if (cfg.stats != nullptr) {
    cfg.stats->kernel = blas::active_kernel().name;
  }
  Arena local;
  Arena* arena = cfg.workspace != nullptr ? cfg.workspace : &local;
  try {
    // Warm the pack scratch on this thread *and* every pool worker now:
    // the product nodes run their packed GEMMs (and possible intra-GEMM
    // fan-outs) inside the DAG's no-fail region on arbitrary workers, and
    // the post-combine peel fix-ups run plain GEMMs on the calling thread
    // after C has been written -- none of them may allocate lazily.
    blas::ensure_pack_capacity_all_workers(
        blas::blocking_for(blas::active_machine()));
    // The single up-front acquisition the DAG carves from: product
    // temporaries plus one worker-local sub-arena per lane, priced
    // exactly by core::parallel_workspace_doubles. The probe maps a
    // too-small caller arena (or an injected alloc fault) to this
    // pre-write acquisition point.
    if (arena->in_use() == 0 &&
        arena->capacity() < static_cast<std::size_t>(plan.workspace)) {
      arena->reserve(static_cast<std::size_t>(plan.workspace));
    }
    arena->probe(static_cast<std::size_t>(plan.workspace));
    run_task_dag(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                 ldc, cfg, plan, *arena);
  } catch (const std::exception&) {
    if (cfg.on_failure == core::FailurePolicy::strict) throw;
    // Graceful degradation: one workspace-free DGEMM over the whole
    // problem. beta*C is still intact (every acquisition precedes the
    // DAG's first write). Forced serial: the degraded path must stay
    // infallible, and an intra-GEMM fan-out could hit a fresh task-entry
    // fault or a cold worker's allocation.
    blas::ScopedGemmThreads serial_gemm(1);
    blas::dgemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc);
    if (cfg.stats != nullptr) {
      ++cfg.stats->fallbacks;
      ++cfg.stats->base_gemms;
      cfg.stats->faults_injected +=
          faultinject::injected_total() - faults_before;
    }
    return 0;
  }
  if (cfg.stats != nullptr) {
    cfg.stats->faults_injected +=
        faultinject::injected_total() - faults_before;
  }
  return 0;
}

}  // namespace strassen::parallel
