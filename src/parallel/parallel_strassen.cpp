#include "parallel/parallel_strassen.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "core/add_kernels.hpp"
#include "core/dgefmm.hpp"
#include "core/peeling.hpp"
#include "parallel/thread_pool.hpp"

namespace strassen::parallel {

namespace {

// Serial DGEFMM config used inside each parallel task.
core::DgefmmConfig child_config(const ParallelDgefmmConfig& cfg,
                                Arena* arena) {
  core::DgefmmConfig child;
  child.cutoff = cfg.cutoff;
  child.workspace = arena;
  return child;
}

}  // namespace

int dgefmm_parallel(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc, const ParallelDgefmmConfig& cfg) {
  // Serial fallback covers argument checking, degenerate cases, and
  // problems the cutoff sends straight to DGEMM.
  if (m < 2 || k < 2 || n < 2 || alpha == 0.0 ||
      cfg.cutoff.stop(m, k, n, 0)) {
    core::DgefmmConfig serial;
    serial.cutoff = cfg.cutoff;
    return core::dgefmm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                        c, ldc, serial);
  }
  // Argument checking via a zero-work call.
  {
    core::DgefmmConfig serial;
    serial.cutoff = cfg.cutoff;
    const int info = core::dgefmm(transa, transb, m, n, k, 0.0, a, lda, b,
                                  ldb, 1.0, c, ldc, serial);
    if (info != 0) return info;
  }

  const ConstView av = make_op_view(transa, a, is_trans(transa) ? k : m,
                                    is_trans(transa) ? m : k, lda);
  const ConstView bv = make_op_view(transb, b, is_trans(transb) ? n : k,
                                    is_trans(transb) ? k : n, ldb);
  MutView cv = make_view(c, m, n, ldc);

  const index_t me = m & ~index_t{1}, ke = k & ~index_t{1},
                ne = n & ~index_t{1};
  const index_t m2 = me / 2, k2 = ke / 2, n2 = ne / 2;

  ConstView ae = av.block(0, 0, me, ke);
  ConstView be = bv.block(0, 0, ke, ne);
  MutView ce = cv.block(0, 0, me, ne);

  ConstView a11 = ae.block(0, 0, m2, k2), a12 = ae.block(0, k2, m2, k2);
  ConstView a21 = ae.block(m2, 0, m2, k2), a22 = ae.block(m2, k2, m2, k2);
  ConstView b11 = be.block(0, 0, k2, n2), b12 = be.block(0, n2, k2, n2);
  ConstView b21 = be.block(k2, 0, k2, n2), b22 = be.block(k2, n2, k2, n2);
  MutView c11 = ce.block(0, 0, m2, n2), c12 = ce.block(0, n2, m2, n2);
  MutView c21 = ce.block(m2, 0, m2, n2), c22 = ce.block(m2, n2, m2, n2);

  // Top-level operand sums (serial; O(n^2)).
  Matrix s1(m2, k2), s2(m2, k2), s3(m2, k2), s4(m2, k2);
  Matrix t1(k2, n2), t2(k2, n2), t3(k2, n2), t4(k2, n2);
  core::add(a21, a22, s1.view());
  core::sub(s1.view(), a11, s2.view());
  core::sub(a11, a21, s3.view());
  core::sub(a12, s2.view(), s4.view());
  core::sub(b12, b11, t1.view());
  core::sub(b22, t1.view(), t2.view());
  core::sub(b22, b12, t3.view());
  core::sub(t2.view(), b21, t4.view());

  // Seven independent products, each a serial DGEFMM with its own arena.
  Matrix q1(m2, n2), q2(m2, n2), q3(m2, n2), q4(m2, n2), q5(m2, n2),
      q6(m2, n2), q7(m2, n2);
  struct Product {
    ConstView left, right;
    MutView out;
  };
  const Product products[7] = {
      {a11, b11, q1.view()},         {a12, b21, q2.view()},
      {s4.view(), b22, q3.view()},   {a22, t4.view(), q4.view()},
      {s1.view(), t1.view(), q5.view()}, {s2.view(), t2.view(), q6.view()},
      {s3.view(), t3.view(), q7.view()},
  };

  std::vector<std::function<void()>> tasks;
  tasks.reserve(7);
  for (const Product& p : products) {
    tasks.push_back([p, alpha, &cfg] {
      Arena arena;
      core::DgefmmConfig child = child_config(cfg, &arena);
      core::dgefmm_view(alpha, p.left, p.right, 0.0, p.out, child);
    });
  }
  global_pool().run_batch(std::move(tasks));

  // Combine (serial): U2 = P1 + P6, U3 = U2 + P7.
  core::axpby(1.0, q1.view(), beta, c11);
  core::add_inplace(c11, q2.view());
  core::add_inplace(q6.view(), q1.view());  // q6 = alpha*U2
  core::add_inplace(q7.view(), q6.view());  // q7 = alpha*U3
  core::axpby(1.0, q5.view(), beta, c12);
  core::add_inplace(c12, q3.view());
  core::add_inplace(c12, q6.view());
  core::axpby(1.0, q7.view(), beta, c21);
  core::sub_inplace(c21, q4.view());
  core::axpby(1.0, q7.view(), beta, c22);
  core::add_inplace(c22, q5.view());

  // Odd-dimension fix-ups, exactly as in the serial driver.
  if (((m | k | n) & 1) != 0) {
    core::peel_fixups(alpha, av, bv, beta, cv, me, ke, ne);
  }
  return 0;
}

}  // namespace strassen::parallel
