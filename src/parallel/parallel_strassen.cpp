#include "parallel/parallel_strassen.hpp"

#include <type_traits>

#include "blas/gemm.hpp"
#include "blas/kernels.hpp"
#include "blas/machine.hpp"
#include "blas/packed_loop.hpp"
#include "core/dgefmm.hpp"
#include "core/sgefmm.hpp"
#include "core/tuned_policy.hpp"
#include "parallel/task_dag.hpp"
#include "support/faultinject.hpp"
#include "support/thread_pool.hpp"

namespace strassen::parallel {

namespace {

template <class T>
int serial_gefmm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
                 T alpha, const T* a, index_t lda, const T* b, index_t ldb,
                 T beta, T* c, index_t ldc,
                 const core::GefmmConfigT<T>& cfg) {
  if constexpr (std::is_same_v<T, float>) {
    return core::sgefmm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                        c, ldc, cfg);
  } else {
    return core::dgefmm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                        c, ldc, cfg);
  }
}

template <class T>
int gefmm_parallel_t(Trans transa, Trans transb, index_t m, index_t n,
                     index_t k, T alpha, const T* a, index_t lda, const T* b,
                     index_t ldb, T beta, T* c, index_t ldc,
                     const ParallelGefmmConfigT<T>& cfg) {
  if (cfg.use_tuned) {
    // The measured crossover decides schedule and cutoffs. Only the DAG
    // path stays in this driver (with the tuned cutoffs and the fused
    // leaves the crossover was measured against); everything else --
    // plain GEMM below the fused crossover, one or two fused serial
    // levels above it, classic when no valid policy is installed -- is
    // the serial driver's own use_tuned resolution, so the two entry
    // points can never disagree about a shape.
    const int pool = static_cast<int>(global_pool().size());
    const int workers = std::max(
        cfg.threads != 0 ? static_cast<int>(cfg.threads) : pool, 1);
    const core::TunedPolicy* policy = core::tuned_policy<T>();
    if (policy != nullptr &&
        core::tuned_path_for(*policy, m, k, n, workers) ==
            core::TunedPath::dag) {
      ParallelGefmmConfigT<T> eff = cfg;
      eff.use_tuned = false;
      eff.cutoff = policy->select(static_cast<double>(beta));
      eff.scheme = core::Scheme::fused;
      if (cfg.stats != nullptr) {
        cfg.stats->tuned_path = core::tuned_path_name(core::TunedPath::dag);
      }
      return gefmm_parallel_t<T>(transa, transb, m, n, k, alpha, a, lda, b,
                                 ldb, beta, c, ldc, eff);
    }
    core::GefmmConfigT<T> serial;
    serial.use_tuned = true;
    serial.on_failure = cfg.on_failure;
    serial.stats = cfg.stats;
    // Forward the caller's arena: dropping it here would silently
    // re-allocate (and first-touch) the whole recursion workspace on
    // every call, which at paper scale costs more than a fused level.
    serial.workspace = cfg.workspace;
    return serial_gefmm<T>(transa, transb, m, n, k, alpha, a, lda, b, ldb,
                           beta, c, ldc, serial);
  }
  // Serial fallback covers argument checking, degenerate cases, and
  // problems the cutoff sends straight to GEMM (with the caller's failure
  // policy and stats passed through).
  if (m < 2 || k < 2 || n < 2 || alpha == T(0) ||
      cfg.cutoff.stop(m, k, n, 0)) {
    core::GefmmConfigT<T> serial;
    serial.cutoff = cfg.cutoff;
    serial.scheme = cfg.scheme;
    serial.on_failure = cfg.on_failure;
    serial.stats = cfg.stats;
    return serial_gefmm<T>(transa, transb, m, n, k, alpha, a, lda, b, ldb,
                           beta, c, ldc, serial);
  }
  // Argument checking via a zero-work call (alpha == 0 quick-returns with
  // beta == 1, so C stays untouched and no workspace is acquired).
  {
    core::GefmmConfigT<T> serial;
    serial.cutoff = cfg.cutoff;
    const int info = serial_gefmm<T>(transa, transb, m, n, k, T(0), a, lda,
                                     b, ldb, T(1), c, ldc, serial);
    if (info != 0) return info;
  }

  const long faults_before = faultinject::injected_total();
  const DagPlan plan = plan_dag(m, n, k, cfg);
  if (cfg.stats != nullptr) {
    cfg.stats->kernel = blas::active_kernel_t<T>().name;
  }
  ArenaT<T> local;
  ArenaT<T>* arena = cfg.workspace != nullptr ? cfg.workspace : &local;
  try {
    // Warm the pack scratch on this thread *and* every pool worker now:
    // the product nodes run their packed GEMMs (and possible intra-GEMM
    // fan-outs) inside the DAG's no-fail region on arbitrary workers, and
    // the post-combine peel fix-ups run plain GEMMs on the calling thread
    // after C has been written -- none of them may allocate lazily.
    blas::ensure_pack_capacity_all_workers<T>(
        blas::blocking_for_t<T>(blas::active_machine()));
    // The single up-front acquisition the DAG carves from: product
    // temporaries plus one worker-local sub-arena per lane, priced
    // exactly by core::parallel_workspace_doubles/_floats. The probe maps
    // a too-small caller arena (or an injected alloc fault) to this
    // pre-write acquisition point.
    if (arena->in_use() == 0 &&
        arena->capacity() < static_cast<std::size_t>(plan.workspace)) {
      arena->reserve(static_cast<std::size_t>(plan.workspace));
    }
    arena->probe(static_cast<std::size_t>(plan.workspace));
    run_task_dag(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                 ldc, cfg, plan, *arena);
  } catch (const CanceledError&) {
    // Cooperative cancellation is not a resource failure: the fallback
    // policy must not burn a full workspace-free GEMM computing a result
    // nobody wants. C is untouched (the cancel won the race to the first
    // combine); the serving layer maps this to the canceled status.
    throw;
  } catch (const std::exception&) {
    if (cfg.on_failure == core::FailurePolicy::strict) throw;
    // Graceful degradation: one workspace-free GEMM over the whole
    // problem. beta*C is still intact (every acquisition precedes the
    // DAG's first write). Forced serial: the degraded path must stay
    // infallible, and an intra-GEMM fan-out could hit a fresh task-entry
    // fault or a cold worker's allocation.
    blas::ScopedGemmThreads serial_gemm(1);
    if constexpr (std::is_same_v<T, float>) {
      blas::sgemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                  ldc);
    } else {
      blas::dgemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                  ldc);
    }
    if (cfg.stats != nullptr) {
      ++cfg.stats->fallbacks;
      ++cfg.stats->base_gemms;
      cfg.stats->faults_injected +=
          faultinject::injected_total() - faults_before;
    }
    return 0;
  }
  if (cfg.stats != nullptr) {
    cfg.stats->faults_injected +=
        faultinject::injected_total() - faults_before;
  }
  return 0;
}

}  // namespace

int dgefmm_parallel(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc, const ParallelDgefmmConfig& cfg) {
  return gefmm_parallel_t<double>(transa, transb, m, n, k, alpha, a, lda, b,
                                  ldb, beta, c, ldc, cfg);
}

int sgefmm_parallel(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, float alpha, const float* a, index_t lda,
                    const float* b, index_t ldb, float beta, float* c,
                    index_t ldc, const ParallelSgefmmConfig& cfg) {
  return gefmm_parallel_t<float>(transa, transb, m, n, k, alpha, a, lda, b,
                                 ldb, beta, c, ldc, cfg);
}

}  // namespace strassen::parallel
