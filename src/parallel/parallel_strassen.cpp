#include "parallel/parallel_strassen.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/kernels.hpp"
#include "blas/packed_loop.hpp"
#include "core/add_kernels.hpp"
#include "core/dgefmm.hpp"
#include "core/peeling.hpp"
#include "core/winograd_fused.hpp"
#include "parallel/thread_pool.hpp"
#include "support/faultinject.hpp"

namespace strassen::parallel {

namespace {

// Serial DGEFMM config used inside each parallel task. The failure policy
// propagates, so under `fallback` a fault inside one task degrades just
// that task's product to plain DGEMM while the other six stay on Strassen.
core::DgefmmConfig child_config(const ParallelDgefmmConfig& cfg,
                                Arena* arena, core::DgefmmStats* stats) {
  core::DgefmmConfig child;
  child.cutoff = cfg.cutoff;
  child.scheme = cfg.scheme;
  child.workspace = arena;
  child.on_failure = cfg.on_failure;
  child.stats = stats;
  return child;
}

// Folds per-task stats into cfg.stats. faults_injected is zeroed first:
// the counter children read is process-global, so concurrent tasks can
// each observe the same injection -- the driver records one overall delta
// instead.
void merge_child_stats(const ParallelDgefmmConfig& cfg,
                       core::DgefmmStats* children, int n) {
  if (cfg.stats == nullptr) return;
  for (int i = 0; i < n; ++i) {
    children[i].faults_injected = 0;
    cfg.stats->merge_from(children[i]);
  }
}

// Seven tasks of the fused top level: Strassen's original form needs no S/T
// operand temporaries at all -- the sums are formed while packing inside
// each task's fused_product call -- so the only parallel-path memory is the
// seven product temporaries the combine step needs.
void run_fused_top_level(double alpha, ConstView a11, ConstView a12,
                         ConstView a21, ConstView a22, ConstView b11,
                         ConstView b12, ConstView b21, ConstView b22,
                         double beta, MutView c11, MutView c12, MutView c21,
                         MutView c22, const ParallelDgefmmConfig& cfg) {
  const index_t m2 = c11.rows, n2 = c11.cols;
  Matrix p1(m2, n2), p2(m2, n2), p3(m2, n2), p4(m2, n2), p5(m2, n2),
      p6(m2, n2), p7(m2, n2);
  struct Product {
    core::detail::FusedOperand a, b;
    MutView out;
  };
  Product products[7] = {{{}, {}, p1.view()}, {{}, {}, p2.view()},
                         {{}, {}, p3.view()}, {{}, {}, p4.view()},
                         {{}, {}, p5.view()}, {{}, {}, p6.view()},
                         {{}, {}, p7.view()}};
  // M1 = (A11 + A22)(B11 + B22)
  products[0].a.add(a11, 1.0), products[0].a.add(a22, 1.0);
  products[0].b.add(b11, 1.0), products[0].b.add(b22, 1.0);
  // M2 = (A21 + A22) B11
  products[1].a.add(a21, 1.0), products[1].a.add(a22, 1.0);
  products[1].b.add(b11, 1.0);
  // M3 = A11 (B12 - B22)
  products[2].a.add(a11, 1.0);
  products[2].b.add(b12, 1.0), products[2].b.add(b22, -1.0);
  // M4 = A22 (B21 - B11)
  products[3].a.add(a22, 1.0);
  products[3].b.add(b21, 1.0), products[3].b.add(b11, -1.0);
  // M5 = (A11 + A12) B22
  products[4].a.add(a11, 1.0), products[4].a.add(a12, 1.0);
  products[4].b.add(b22, 1.0);
  // M6 = (A21 - A11)(B11 + B12)
  products[5].a.add(a21, 1.0), products[5].a.add(a11, -1.0);
  products[5].b.add(b11, 1.0), products[5].b.add(b12, 1.0);
  // M7 = (A12 - A22)(B21 + B22)
  products[6].a.add(a12, 1.0), products[6].a.add(a22, -1.0);
  products[6].b.add(b21, 1.0), products[6].b.add(b22, 1.0);

  core::DgefmmStats child_stats[7];
  std::vector<std::function<void()>> tasks;
  tasks.reserve(7);
  for (int i = 0; i < 7; ++i) {
    Product* p = &products[i];
    core::DgefmmStats* st = &child_stats[i];
    tasks.push_back([p, st, alpha, &cfg] {
      Arena arena;
      core::DgefmmConfig child = child_config(cfg, &arena, st);
      core::detail::Ctx ctx{&child, &arena, st};
      core::detail::fused_product(p->a, p->b, p->out, alpha, 0.0, ctx, 1);
    });
  }
  global_pool().run_batch(std::move(tasks));
  merge_child_stats(cfg, child_stats, 7);

  // Every fallible step is behind us (run_batch rethrew any task failure
  // before this point); the combine below is the first write to C.
  faultinject::ScopedSuspend nofail;

  // C11 = beta C11 + M1 + M4 - M5 + M7
  core::axpby(1.0, p1.view(), beta, c11);
  core::add_inplace(c11, p4.view());
  core::sub_inplace(c11, p5.view());
  core::add_inplace(c11, p7.view());
  // C12 = beta C12 + M3 + M5
  core::axpby(1.0, p3.view(), beta, c12);
  core::add_inplace(c12, p5.view());
  // C21 = beta C21 + M2 + M4
  core::axpby(1.0, p2.view(), beta, c21);
  core::add_inplace(c21, p4.view());
  // C22 = beta C22 + M1 - M2 + M3 + M6
  core::axpby(1.0, p1.view(), beta, c22);
  core::sub_inplace(c22, p2.view());
  core::add_inplace(c22, p3.view());
  core::add_inplace(c22, p6.view());
}

// The whole parallel evaluation: temporaries, task fan-out, combine. Every
// fallible step (Matrix buffers, child arenas, task spawning) happens
// before the combine's first write to C, so a throw from here always
// leaves beta*C intact for dgefmm_parallel's policy handling.
void run_top_level(Trans transa, Trans transb, index_t m, index_t n,
                   index_t k, double alpha, const double* a, index_t lda,
                   const double* b, index_t ldb, double beta, double* c,
                   index_t ldc, const ParallelDgefmmConfig& cfg) {
  const ConstView av = make_op_view(transa, a, is_trans(transa) ? k : m,
                                    is_trans(transa) ? m : k, lda);
  const ConstView bv = make_op_view(transb, b, is_trans(transb) ? n : k,
                                    is_trans(transb) ? k : n, ldb);
  MutView cv = make_view(c, m, n, ldc);

  const index_t me = m & ~index_t{1}, ke = k & ~index_t{1},
                ne = n & ~index_t{1};
  const index_t m2 = me / 2, k2 = ke / 2, n2 = ne / 2;

  ConstView ae = av.block(0, 0, me, ke);
  ConstView be = bv.block(0, 0, ke, ne);
  MutView ce = cv.block(0, 0, me, ne);

  ConstView a11 = ae.block(0, 0, m2, k2), a12 = ae.block(0, k2, m2, k2);
  ConstView a21 = ae.block(m2, 0, m2, k2), a22 = ae.block(m2, k2, m2, k2);
  ConstView b11 = be.block(0, 0, k2, n2), b12 = be.block(0, n2, k2, n2);
  ConstView b21 = be.block(k2, 0, k2, n2), b22 = be.block(k2, n2, k2, n2);
  MutView c11 = ce.block(0, 0, m2, n2), c12 = ce.block(0, n2, m2, n2);
  MutView c21 = ce.block(m2, 0, m2, n2), c22 = ce.block(m2, n2, m2, n2);

  if (cfg.scheme == core::Scheme::fused) {
    run_fused_top_level(alpha, a11, a12, a21, a22, b11, b12, b21, b22, beta,
                        c11, c12, c21, c22, cfg);
    if (((m | k | n) & 1) != 0) {
      core::peel_fixups(alpha, av, bv, beta, cv, me, ke, ne);
    }
    return;
  }

  // Top-level operand sums (serial; O(n^2)).
  Matrix s1(m2, k2), s2(m2, k2), s3(m2, k2), s4(m2, k2);
  Matrix t1(k2, n2), t2(k2, n2), t3(k2, n2), t4(k2, n2);
  core::add(a21, a22, s1.view());
  core::sub(s1.view(), a11, s2.view());
  core::sub(a11, a21, s3.view());
  core::sub(a12, s2.view(), s4.view());
  core::sub(b12, b11, t1.view());
  core::sub(b22, t1.view(), t2.view());
  core::sub(b22, b12, t3.view());
  core::sub(t2.view(), b21, t4.view());

  // Seven independent products, each a serial DGEFMM with its own arena.
  Matrix q1(m2, n2), q2(m2, n2), q3(m2, n2), q4(m2, n2), q5(m2, n2),
      q6(m2, n2), q7(m2, n2);
  struct Product {
    ConstView left, right;
    MutView out;
  };
  const Product products[7] = {
      {a11, b11, q1.view()},         {a12, b21, q2.view()},
      {s4.view(), b22, q3.view()},   {a22, t4.view(), q4.view()},
      {s1.view(), t1.view(), q5.view()}, {s2.view(), t2.view(), q6.view()},
      {s3.view(), t3.view(), q7.view()},
  };

  core::DgefmmStats child_stats[7];
  std::vector<std::function<void()>> tasks;
  tasks.reserve(7);
  for (int i = 0; i < 7; ++i) {
    const Product p = products[i];
    core::DgefmmStats* st = &child_stats[i];
    tasks.push_back([p, st, alpha, &cfg] {
      Arena arena;
      core::DgefmmConfig child = child_config(cfg, &arena, st);
      core::dgefmm_view(alpha, p.left, p.right, 0.0, p.out, child);
    });
  }
  global_pool().run_batch(std::move(tasks));
  merge_child_stats(cfg, child_stats, 7);

  // First write to C; nothing from here on allocates (the peel fix-ups'
  // pack scratch was warmed by dgefmm_parallel). Injection stays off so a
  // mid-combine fault cannot be misread as an acquisition failure.
  faultinject::ScopedSuspend nofail;

  // Combine (serial): U2 = P1 + P6, U3 = U2 + P7.
  core::axpby(1.0, q1.view(), beta, c11);
  core::add_inplace(c11, q2.view());
  core::add_inplace(q6.view(), q1.view());  // q6 = alpha*U2
  core::add_inplace(q7.view(), q6.view());  // q7 = alpha*U3
  core::axpby(1.0, q5.view(), beta, c12);
  core::add_inplace(c12, q3.view());
  core::add_inplace(c12, q6.view());
  core::axpby(1.0, q7.view(), beta, c21);
  core::sub_inplace(c21, q4.view());
  core::axpby(1.0, q7.view(), beta, c22);
  core::add_inplace(c22, q5.view());

  // Odd-dimension fix-ups, exactly as in the serial driver.
  if (((m | k | n) & 1) != 0) {
    core::peel_fixups(alpha, av, bv, beta, cv, me, ke, ne);
  }
}

}  // namespace

int dgefmm_parallel(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc, const ParallelDgefmmConfig& cfg) {
  // Serial fallback covers argument checking, degenerate cases, and
  // problems the cutoff sends straight to DGEMM (with the caller's failure
  // policy and stats passed through).
  if (m < 2 || k < 2 || n < 2 || alpha == 0.0 ||
      cfg.cutoff.stop(m, k, n, 0)) {
    core::DgefmmConfig serial;
    serial.cutoff = cfg.cutoff;
    serial.scheme = cfg.scheme;
    serial.on_failure = cfg.on_failure;
    serial.stats = cfg.stats;
    return core::dgefmm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                        c, ldc, serial);
  }
  // Argument checking via a zero-work call (alpha == 0 quick-returns with
  // beta == 1, so C stays untouched and no workspace is acquired).
  {
    core::DgefmmConfig serial;
    serial.cutoff = cfg.cutoff;
    const int info = core::dgefmm(transa, transb, m, n, k, 0.0, a, lda, b,
                                  ldb, 1.0, c, ldc, serial);
    if (info != 0) return info;
  }

  const long faults_before = faultinject::injected_total();
  if (cfg.stats != nullptr) {
    cfg.stats->kernel = blas::active_kernel().name;
  }
  try {
    // Warm the pack scratch on this thread *and* every pool worker now:
    // the product tasks run their packed GEMMs (and possible intra-GEMM
    // fan-outs) inside per-task no-fail regions on arbitrary workers, and
    // the post-combine peel fix-ups run plain GEMMs on the calling thread
    // after C has been written -- none of them may allocate lazily.
    blas::ensure_pack_capacity_all_workers(
        blas::blocking_for(blas::active_machine()));
    run_top_level(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                  ldc, cfg);
  } catch (const std::exception&) {
    if (cfg.on_failure == core::FailurePolicy::strict) throw;
    // Graceful degradation: one workspace-free DGEMM over the whole
    // problem. beta*C is still intact (see run_top_level). Forced serial:
    // the degraded path must stay infallible, and an intra-GEMM fan-out
    // could hit a fresh task-entry fault or a cold worker's allocation.
    blas::ScopedGemmThreads serial_gemm(1);
    blas::dgemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc);
    if (cfg.stats != nullptr) {
      ++cfg.stats->fallbacks;
      ++cfg.stats->base_gemms;
      cfg.stats->faults_injected +=
          faultinject::injected_total() - faults_before;
    }
    return 0;
  }
  if (cfg.stats != nullptr) {
    cfg.stats->faults_injected +=
        faultinject::injected_total() - faults_before;
  }
  return 0;
}

}  // namespace strassen::parallel
