// Minimal fixed-size thread pool.
//
// The paper lists parallelism as future work (Section 5); this module is
// the corresponding extension. The pool runs batches of independent tasks
// and blocks until the batch drains -- exactly the shape of "seven
// independent Strassen sub-products" and "independent column panels of
// DGEMM".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace strassen::parallel {

class ThreadPool {
 public:
  /// Creates `threads` workers (0 means std::thread::hardware_concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  std::size_t size() const { return workers_.size(); }

  /// Runs all tasks and returns when every one has finished. Tasks must be
  /// independent. Exceptions thrown by tasks are rethrown (the first one)
  /// after the batch drains.
  void run_batch(std::vector<std::function<void()>> tasks);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::queue<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

/// Process-wide shared pool (lazily constructed).
ThreadPool& global_pool();

}  // namespace strassen::parallel
