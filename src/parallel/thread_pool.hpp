// Historical include path: the pool moved to support/ so the BLAS layer
// (packed_loop.cpp's intra-GEMM fan-out) can use it without inverting the
// support -> blas -> core -> parallel layering. API and namespace
// (strassen::parallel) are unchanged.
#pragma once

#include "support/thread_pool.hpp"
