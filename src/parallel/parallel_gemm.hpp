// Thread-parallel DGEMM: independent column panels of C dispatched to the
// thread pool. Part of the "future work: parallelism" extension.
#pragma once

#include <cstddef>

#include "support/config.hpp"
#include "support/matrix.hpp"

namespace strassen::parallel {

/// C <- alpha * op(A) * op(B) + beta * C, computed by partitioning C's
/// columns across `threads` workers (0 = hardware concurrency). Each panel
/// is an independent serial dgemm on the active machine profile.
void dgemm_parallel(Trans transa, Trans transb, index_t m, index_t n,
                    index_t k, double alpha, const double* a, index_t lda,
                    const double* b, index_t ldb, double beta, double* c,
                    index_t ldc, std::size_t threads = 0);

}  // namespace strassen::parallel
