// Depth-L task-DAG scheduler for the parallel Winograd top level.
//
// The flat seven-task fan-out (PR history: the original parallel driver)
// ended every top level with a full barrier: all seven products had to
// finish before the first combine could start, and each product task
// claimed the whole pool for its intra-GEMM fan-out, oversubscribing the
// machine 7x at the seam. This module replaces that with a dependency-aware
// executor over the verified schedule IR:
//
//  * plan_dag() is the moldable pre-flight planner. It expands the fused
//    product table to `par_depth` levels (7 product nodes and 4 combine
//    nodes at depth 1; 49 and 16 at depth 2), splits the core budget
//    between DAG width (`lanes`) and per-leaf intra-GEMM fan-out
//    (`leaf_gemm_threads`) so that lanes * leaf_gemm_threads never exceeds
//    the budget, and prices the single up-front workspace reservation
//    (core::parallel_workspace_doubles/_floats) the run will carve from.
//
//  * run_task_dag() builds the bipartite product->combine DAG from
//    verify::kDagL1/kDagL2 (derived at compile time from the proved tables
//    and static_asserted acyclic and covering), carves every product
//    temporary and one borrowed worker-local sub-arena per lane out of the
//    caller's arena, and executes the graph on the shared pool's
//    work-stealing lanes (ThreadPool::run_dag): a combine whose products
//    are done overlaps with still-running products instead of waiting at
//    the barrier.
//
// Both are templated on the element type (double for dgefmm_parallel,
// float for sgefmm_parallel); the DAG structure, carving order, and
// workspace price are identical, only the element storage and the kernels
// below change.
//
// Determinism: each combine applies its gamma-weighted products in the
// fixed ascending order of the verified DAG, so C is bitwise identical for
// every lane count, thread count, and steal order. Failure contract
// (DESIGN.md section 7): every acquisition -- the arena reservation, the
// DagRun construction, the pack-scratch warmup -- happens in the driver
// before run_task_dag's first write to C; the run itself is a no-fail
// region.
#pragma once

#include "core/types.hpp"
#include "support/arena.hpp"
#include "support/config.hpp"

namespace strassen::parallel {

template <class T>
struct ParallelGefmmConfigT;

/// Resolved pre-flight plan for one dgefmm_parallel/sgefmm_parallel call.
struct DagPlan {
  int par_depth = 1;         ///< schedule levels expanded into the DAG (1-2)
  int lanes = 1;             ///< scheduler lanes (max concurrent DAG nodes)
  int leaf_gemm_threads = 1; ///< intra-GEMM fan-out inside each product
                             ///< node (0 = legacy whole-pool setting)
  int products = 7;          ///< product nodes: 7^par_depth
  int combines = 4;          ///< combine nodes: 4^par_depth
  count_t workspace = 0;     ///< elements of the single up-front reservation
};

/// Computes the moldable core allotment and workspace price for the given
/// problem. Honors cfg.par_depth / cfg.lanes / cfg.leaf_gemm_threads when
/// set, then the STRASSEN_PAR_DEPTH / STRASSEN_PAR_LANES environment
/// knobs, and otherwise splits cfg.threads (0 = pool size) between lanes
/// and per-leaf fan-out. Depth 2 is only selected when the quarter
/// dimensions exist (the even core must split twice).
template <class T>
[[nodiscard]] DagPlan plan_dag(index_t m, index_t n, index_t k,
                               const ParallelGefmmConfigT<T>& cfg);

/// Executes the planned task DAG. `arena` must already hold the plan's
/// workspace (the driver reserves and probes before calling); this
/// function performs no fallible acquisition after its carving phase and
/// writes C only from combine nodes. Exceptions out of the graph leave
/// beta*C intact.
template <class T>
void run_task_dag(Trans transa, Trans transb, index_t m, index_t n,
                  index_t k, T alpha, const T* a, index_t lda, const T* b,
                  index_t ldb, T beta, T* c, index_t ldc,
                  const ParallelGefmmConfigT<T>& cfg, const DagPlan& plan,
                  ArenaT<T>& arena);

extern template DagPlan plan_dag<double>(index_t, index_t, index_t,
                                         const ParallelGefmmConfigT<double>&);
extern template DagPlan plan_dag<float>(index_t, index_t, index_t,
                                        const ParallelGefmmConfigT<float>&);
extern template void run_task_dag<double>(Trans, Trans, index_t, index_t,
                                          index_t, double, const double*,
                                          index_t, const double*, index_t,
                                          double, double*, index_t,
                                          const ParallelGefmmConfigT<double>&,
                                          const DagPlan&, ArenaT<double>&);
extern template void run_task_dag<float>(Trans, Trans, index_t, index_t,
                                         index_t, float, const float*,
                                         index_t, const float*, index_t,
                                         float, float*, index_t,
                                         const ParallelGefmmConfigT<float>&,
                                         const DagPlan&, ArenaT<float>&);

}  // namespace strassen::parallel
