#include "parallel/task_dag.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <type_traits>
#include <vector>

#include "blas/packed_loop.hpp"
#include "core/add_kernels.hpp"
#include "core/peeling.hpp"
#include "core/winograd.hpp"
#include "core/winograd_fused.hpp"
#include "core/workspace.hpp"
#include "parallel/parallel_strassen.hpp"
#include "support/errors.hpp"
#include "support/faultinject.hpp"
#include "support/matrix.hpp"
#include "support/thread_pool.hpp"
#include "verify/schedule_dag.hpp"

namespace strassen::parallel {

namespace {

int env_int(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return 0;
  return static_cast<int>(std::min<long>(v, 4096));
}

// Depth 2 needs the even core to split twice: both halves of every even
// dimension must themselves be even and nonzero.
bool depth2_feasible(index_t m, index_t k, index_t n) {
  const index_t m2 = (m & ~index_t{1}) / 2;
  const index_t k2 = (k & ~index_t{1}) / 2;
  const index_t n2 = (n & ~index_t{1}) / 2;
  return m2 >= 2 && k2 >= 2 && n2 >= 2 && ((m2 | k2 | n2) & 1) == 0;
}

// Cancellation decision states: the run transitions kUndecided ->
// {kCommitted, kCanceled} exactly once (see enter_node below).
enum : int { kUndecided = 0, kCommitted = 1, kCanceled = 2 };

// State every DAG node shares; lives on run_task_dag's stack.
template <class T>
struct Shared {
  const core::GefmmConfigT<T>* child = nullptr;
  ArenaT<T>* lane_arenas = nullptr;         // [lanes]
  core::DgefmmStats* lane_stats = nullptr;  // [lanes]
  const BasicView<T>* products = nullptr;   // [NP] product temporaries
  T alpha = T(1);
  T beta = T(0);
  int leaf_gemm_threads = 1;
  int depth = 1;
  const std::atomic<bool>* cancel = nullptr;  // request token (may be null)
  std::atomic<int> decision{kUndecided};      // single-transition commit
};

// Cooperative-cancellation gate, evaluated at every node boundary. The
// guarantee it provides: C is either untouched or fully written, never
// partial. All nodes race for one single-transition `decision` word --
// a node that observes the token set tries kUndecided -> kCanceled; a
// combine (the only node kind that writes C) must first secure
// kUndecided -> kCommitted. Whichever transition lands first is final:
//
//  * kCanceled landed: no combine can have committed, so no C write ever
//    happened; every node (product or combine) that reaches its boundary
//    afterwards throws CanceledError, the graph is abandoned, and the
//    driver rethrows with beta*C bit-identical.
//  * kCommitted landed: cancellation arrived too late; all remaining
//    nodes ignore the token and the multiplication completes normally.
//
// Returns normally when the node should run; throws CanceledError when the
// run is canceled.
template <class T>
void enter_node(Shared<T>& sh, bool writes_c) {
  if (sh.cancel == nullptr) return;
  int d = sh.decision.load(std::memory_order_acquire);
  if (d == kUndecided &&
      sh.cancel->load(std::memory_order_relaxed)) {  // relaxed: cancel-token
    int expected = kUndecided;
    sh.decision.compare_exchange_strong(expected, kCanceled,
                                        std::memory_order_acq_rel);
    d = sh.decision.load(std::memory_order_acquire);
  }
  if (writes_c && d == kUndecided) {
    int expected = kUndecided;
    if (sh.decision.compare_exchange_strong(expected, kCommitted,
                                            std::memory_order_acq_rel)) {
      d = kCommitted;
    } else {
      d = expected;  // the transition that beat us
    }
  }
  if (d == kCanceled) {
    throw CanceledError("request canceled at a task-DAG node boundary");
  }
}

// One product node: out <- alpha * (sum ga_i A_qi)(sum gb_j B_qj), as one
// fused packed-GEMM leaf (or an arena-backed classic recursion below the
// cutoff) drawing from the executing lane's worker-local sub-arena.
template <class T>
struct ProductTask {
  Shared<T>* sh = nullptr;
  core::detail::FusedOperandT<T> a, b;
  BasicView<T> out;
};

template <class T>
void product_body(void* arg, std::size_t lane) {
  auto* t = static_cast<ProductTask<T>*>(arg);
  Shared<T>& sh = *t->sh;
  enter_node(sh, /*writes_c=*/false);
  blas::ScopedGemmThreads fan(sh.leaf_gemm_threads);
  ArenaT<T>& arena = sh.lane_arenas[lane];
  core::DgefmmStats* st = &sh.lane_stats[lane];
  core::detail::CtxT<T> ctx{sh.child, &arena, st};
  ArenaScopeT scope(arena);
  core::detail::fused_product(t->a, t->b, t->out, sh.alpha, T(0), ctx,
                              sh.depth);
}

// One combine node: dst <- beta*dst + sum_i g_i * M_{p_i}, applied in the
// verified DAG's fixed ascending product order -- the source of bitwise
// determinism across lane counts and steal orders.
template <class T>
struct CombineTask {
  Shared<T>* sh = nullptr;
  const verify::DagTerm* terms = nullptr;
  int nterms = 0;
  BasicView<T> dst;
};

template <class T>
void combine_body(void* arg, std::size_t /*lane*/) {
  auto* t = static_cast<CombineTask<T>*>(arg);
  Shared<T>& sh = *t->sh;
  enter_node(sh, /*writes_c=*/true);
  core::axpby(static_cast<T>(t->terms[0].g),
              sh.products[t->terms[0].product], sh.beta, t->dst);
  for (int i = 1; i < t->nterms; ++i) {
    const verify::DagTerm& term = t->terms[i];
    const BasicView<const T> src = sh.products[term.product];
    if (term.g == 1.0) {
      core::add_inplace(t->dst, src);
    } else if (term.g == -1.0) {
      core::sub_inplace(t->dst, src);
    } else {
      core::axpy(static_cast<T>(term.g), src, t->dst);
    }
  }
}

}  // namespace

template <class T>
DagPlan plan_dag(index_t m, index_t n, index_t k,
                 const ParallelGefmmConfigT<T>& cfg) {
  DagPlan plan;
  // The budget is the caller's thread count, defaulting to the pool size.
  // It is deliberately not clamped to the pool: on small machines the
  // caller may ask for more lanes than workers to exercise (and test) the
  // multi-lane scheduling paths; the pool simply runs them with fewer
  // threads.
  const int pool = static_cast<int>(global_pool().size());
  int budget =
      cfg.threads != 0 ? static_cast<int>(cfg.threads) : std::max(pool, 1);
  budget = std::max(budget, 1);

  int depth = cfg.par_depth != 0 ? cfg.par_depth
                                 : env_int("STRASSEN_PAR_DEPTH");
  if (depth == 0) depth = budget > 7 ? 2 : 1;
  depth = std::clamp(depth, 1, 2);
  if (depth == 2 && !depth2_feasible(m, k, n)) depth = 1;
  plan.par_depth = depth;
  plan.products = depth == 2 ? 49 : 7;
  plan.combines = depth == 2 ? 16 : 4;

  int lanes = cfg.lanes != 0 ? cfg.lanes : env_int("STRASSEN_PAR_LANES");
  if (lanes == 0) lanes = std::min(budget, plan.products);
  plan.lanes = std::clamp(lanes, 1, plan.products);

  // Moldable split: whatever the lanes do not use goes to each product
  // leaf's intra-GEMM fan-out, so lanes * leaf_gemm_threads <= budget and
  // the two levels of parallelism never oversubscribe each other. An
  // explicit cfg.leaf_gemm_threads overrides (0 = the legacy whole-pool
  // gemm_threads setting, for baseline comparisons).
  plan.leaf_gemm_threads = cfg.leaf_gemm_threads >= 0
                               ? cfg.leaf_gemm_threads
                               : std::max(1, budget / plan.lanes);

  core::GefmmConfigT<T> child;
  child.cutoff = cfg.cutoff;
  child.scheme = cfg.scheme;
  if constexpr (std::is_same_v<T, float>) {
    plan.workspace = core::parallel_workspace_floats(m, n, k, child,
                                                     plan.par_depth,
                                                     plan.lanes);
  } else {
    plan.workspace = core::parallel_workspace_doubles(m, n, k, child,
                                                      plan.par_depth,
                                                      plan.lanes);
  }
  return plan;
}

template <class T>
void run_task_dag(Trans transa, Trans transb, index_t m, index_t n,
                  index_t k, T alpha, const T* a, index_t lda, const T* b,
                  index_t ldb, T beta, T* c, index_t ldc,
                  const ParallelGefmmConfigT<T>& cfg, const DagPlan& plan,
                  ArenaT<T>& arena) {
  const int L = plan.par_depth;
  const int grid = 1 << L;
  const int np = plan.products;
  const int nb = plan.combines;
  const verify::FProduct* table =
      L == 2 ? verify::kFusedL2.p : verify::kFusedL1;
  const verify::DagTerm* dag_terms =
      L == 2 ? verify::kDagL2.terms : verify::kDagL1.terms;
  const int* term_begin =
      L == 2 ? verify::kDagL2.term_begin : verify::kDagL1.term_begin;

  const BasicView<const T> av =
      make_op_view(transa, a, is_trans(transa) ? k : m,
                   is_trans(transa) ? m : k, lda);
  const BasicView<const T> bv =
      make_op_view(transb, b, is_trans(transb) ? n : k,
                   is_trans(transb) ? k : n, ldb);
  BasicView<T> cv = make_view(c, m, n, ldc);

  const index_t me = m & ~index_t{1}, ke = k & ~index_t{1},
                ne = n & ~index_t{1};
  const index_t mb = me / grid, kb = ke / grid, nbk = ne / grid;
  BasicView<const T> ae = av.block(0, 0, me, ke);
  BasicView<const T> be = bv.block(0, 0, ke, ne);
  BasicView<T> ce = cv.block(0, 0, me, ne);

  // Serial config run inside every product node. The failure policy
  // propagates so a leaf that cannot reserve (never the case after the
  // driver's exact pre-sizing, but kept for contract symmetry) degrades
  // only that product under `fallback`.
  core::GefmmConfigT<T> child;
  child.cutoff = cfg.cutoff;
  child.scheme = cfg.scheme;
  child.on_failure = cfg.on_failure;

  // --- Carving phase: every allocation of the run, in one pass over the
  // caller's pre-reserved arena. Product temporaries first, then one
  // borrowed worker-local sub-arena per lane (first-touched by whichever
  // worker runs that lane's leaves). This ordering is what
  // core::parallel_workspace_doubles/_floats prices.
  ArenaScopeT scope(arena);
  std::vector<BasicView<T>> prod_views;
  prod_views.reserve(static_cast<std::size_t>(np));
  for (int p = 0; p < np; ++p) {
    prod_views.push_back(core::detail::arena_matrix(arena, mb, nbk));
  }
  const count_t lane_ws =
      core::detail::fused_product_workspace(mb, kb, nbk, child, L);
  std::vector<ArenaT<T>> lane_arenas;
  std::vector<T*> lane_bases;
  lane_arenas.reserve(static_cast<std::size_t>(plan.lanes));
  lane_bases.reserve(static_cast<std::size_t>(plan.lanes));
  for (int l = 0; l < plan.lanes; ++l) {
    T* base = arena.alloc(static_cast<std::size_t>(lane_ws));
    lane_bases.push_back(base);
    lane_arenas.emplace_back(base, static_cast<std::size_t>(lane_ws));
  }

  // --- First-touch placement: before the compute phase, page in every
  // lane's borrowed sub-arena on the worker expected to run that lane.
  // Linux places an anonymous page on the NUMA node of the thread that
  // first writes it; without this, the calling thread's carving pass above
  // would pull the whole parent reservation onto its own node and every
  // remote lane would stream its leaf workspace across the interconnect.
  // Lane 0 executes on the calling thread; lanes 1..L-1 are claimed as
  // pool tasks, so they are touched round-robin across the workers -- the
  // best static guess under work stealing, and exactly right when lanes
  // map 1:1 onto workers. Writing T(0) into arena storage is safe (every
  // arena region is written before it is read, and the touches land inside
  // the lane allocations, never on a guard canary); the touch changes
  // placement and timing only, never results. This is an acquisition-phase
  // step: it precedes the no-fail region below, and a run_on_each_worker
  // failure surfaces through the driver's pre-write failure contract.
  count_t touched_pages = 0;
  if (lane_ws > 0) {
    constexpr std::size_t kTouchStride =
        std::max<std::size_t>(std::size_t{4096} / sizeof(T), 1);
    const auto touch_lane = [&lane_bases, lane_ws](int l) {
      T* base = lane_bases[static_cast<std::size_t>(l)];
      count_t pages = 0;
      for (std::size_t i = 0; i < static_cast<std::size_t>(lane_ws);
           i += kTouchStride) {
        base[i] = T(0);
        ++pages;
      }
      return pages;
    };
    const std::size_t nworkers = global_pool().size();
    if (plan.lanes > 1 && nworkers > 0 && !global_pool().on_worker_thread()) {
      std::atomic<count_t> worker_pages{0};
      global_pool().run_on_each_worker([&](std::size_t w) {
        count_t mine = 0;
        for (int l = 1; l < plan.lanes; ++l) {
          if (static_cast<std::size_t>(l - 1) % nworkers == w) {
            mine += touch_lane(l);
          }
        }
        worker_pages.fetch_add(mine,
                               std::memory_order_relaxed);  // relaxed: counter
      });
      touched_pages +=
          worker_pages.load(std::memory_order_relaxed);  // relaxed: counter
    } else {
      // No pool to place onto (or already on a worker, where
      // run_on_each_worker is forbidden): touch locally so the pages are
      // at least resident before the timed region.
      for (int l = 1; l < plan.lanes; ++l) touched_pages += touch_lane(l);
    }
    touched_pages += touch_lane(0);
  }
  std::vector<core::DgefmmStats> lane_stats(
      static_cast<std::size_t>(plan.lanes));

  Shared<T> sh;
  sh.child = &child;
  sh.lane_arenas = lane_arenas.data();
  sh.lane_stats = lane_stats.data();
  sh.products = prod_views.data();
  sh.alpha = alpha;
  sh.beta = beta;
  sh.leaf_gemm_threads = plan.leaf_gemm_threads;
  sh.depth = L;
  sh.cancel = cfg.cancel;

  // Product nodes: operand combinations read straight off the verified
  // table, block q at (row, col) = (q / grid, q % grid) of the 2^L grid.
  std::vector<ProductTask<T>> ptasks(static_cast<std::size_t>(np));
  for (int p = 0; p < np; ++p) {
    ProductTask<T>& t = ptasks[static_cast<std::size_t>(p)];
    t.sh = &sh;
    t.out = prod_views[static_cast<std::size_t>(p)];
    for (int e = 0; e < table[p].na; ++e) {
      const int q = table[p].a[e].q;
      t.a.add(ae.block((q / grid) * mb, (q % grid) * kb, mb, kb),
              static_cast<T>(table[p].a[e].g));
    }
    for (int e = 0; e < table[p].nb; ++e) {
      const int q = table[p].b[e].q;
      t.b.add(be.block((q / grid) * kb, (q % grid) * nbk, kb, nbk),
              static_cast<T>(table[p].b[e].g));
    }
  }

  // Combine nodes: one per C block, terms in the DAG's fixed order.
  std::vector<CombineTask<T>> ctasks(static_cast<std::size_t>(nb));
  for (int blk = 0; blk < nb; ++blk) {
    CombineTask<T>& t = ctasks[static_cast<std::size_t>(blk)];
    t.sh = &sh;
    t.terms = dag_terms + term_begin[blk];
    t.nterms = term_begin[blk + 1] - term_begin[blk];
    t.dst = ce.block((blk / grid) * mb, (blk % grid) * nbk, mb, nbk);
  }

  // Successor lists: product p's successors are the combine nodes whose
  // term lists reference it (node index np + blk). Built by inverting the
  // combine lists; sizes are exact (one edge per c-term).
  const int nedges = term_begin[nb];
  std::vector<std::int32_t> succ_count(static_cast<std::size_t>(np), 0);
  for (int t = 0; t < nedges; ++t) ++succ_count[dag_terms[t].product];
  std::vector<std::int32_t> succ_begin(static_cast<std::size_t>(np) + 1, 0);
  for (int p = 0; p < np; ++p) {
    succ_begin[static_cast<std::size_t>(p) + 1] =
        succ_begin[static_cast<std::size_t>(p)] + succ_count[p];
  }
  std::vector<std::int32_t> successors(static_cast<std::size_t>(nedges));
  std::vector<std::int32_t> cursor(succ_begin.begin(),
                                   succ_begin.end() - 1);
  for (int blk = 0; blk < nb; ++blk) {
    for (int t = term_begin[blk]; t < term_begin[blk + 1]; ++t) {
      successors[static_cast<std::size_t>(
          cursor[dag_terms[t].product]++)] =
          static_cast<std::int32_t>(np + blk);
    }
  }

  std::vector<ThreadPool::DagNode> nodes(
      static_cast<std::size_t>(np + nb));
  for (int p = 0; p < np; ++p) {
    nodes[static_cast<std::size_t>(p)] = ThreadPool::DagNode{
        &product_body<T>, &ptasks[static_cast<std::size_t>(p)],
        successors.data() + succ_begin[static_cast<std::size_t>(p)],
        succ_count[static_cast<std::size_t>(p)], 0};
  }
  for (int blk = 0; blk < nb; ++blk) {
    nodes[static_cast<std::size_t>(np + blk)] = ThreadPool::DagNode{
        &combine_body<T>, &ctasks[static_cast<std::size_t>(blk)], nullptr, 0,
        term_begin[blk + 1] - term_begin[blk]};
  }
  DagRun run(nodes.data(), nodes.size(),
             static_cast<std::size_t>(plan.lanes));

  // --- Execution phase: every acquisition is behind us (the driver's
  // reservation and warmup, this function's carving, the DagRun above), so
  // the graph is a no-fail region: injection is suspended and travels with
  // the lanes, the exactly-sized arenas cannot overflow, and the leaves'
  // raw intra-GEMM batches never throw. Combines perform the first writes
  // to C; an exception escaping run_dag therefore signals either a
  // cooperative cancellation that won the race to the first combine
  // (CanceledError, C untouched by construction of enter_node) or an
  // internal sizing bug (as in the serial no-fail region), never a
  // resource failure, and the driver's policy handling still applies.
  faultinject::ScopedSuspend nofail;
  global_pool().run_dag(run);

  int fixups = 0;
  if (((m | k | n) & 1) != 0) {
    fixups = core::peel_fixups(alpha, av, bv, beta, cv, me, ke, ne);
  }

  if (cfg.stats != nullptr) {
    for (core::DgefmmStats& st : lane_stats) {
      // The injected-fault counter children observe is process-global;
      // the driver records one overall delta instead (see
      // dgefmm_parallel).
      st.faults_injected = 0;
      cfg.stats->merge_from(st);
    }
    // The DAG's top L levels are Strassen recursion nodes themselves:
    // one at depth 1; one plus seven inner nodes at depth 2.
    cfg.stats->strassen_levels += L == 2 ? 8 : 1;
    cfg.stats->peel_fixups += static_cast<count_t>(fixups);
    cfg.stats->steals += static_cast<count_t>(run.steals());
    cfg.stats->dag_nodes += static_cast<count_t>(np + nb);
    if (plan.lanes > cfg.stats->dag_lanes) {
      cfg.stats->dag_lanes = plan.lanes;
    }
    if (plan.leaf_gemm_threads > cfg.stats->gemm_threads) {
      cfg.stats->gemm_threads = plan.leaf_gemm_threads;
    }
    if (L > cfg.stats->max_depth) cfg.stats->max_depth = L;
    if (arena.peak() > cfg.stats->peak_workspace) {
      cfg.stats->peak_workspace = arena.peak();
    }
    cfg.stats->first_touch_pages += touched_pages;
    if (arena.huge_advised_bytes() > cfg.stats->hugepage_bytes) {
      cfg.stats->hugepage_bytes = arena.huge_advised_bytes();
    }
  }
}

template DagPlan plan_dag<double>(index_t, index_t, index_t,
                                  const ParallelGefmmConfigT<double>&);
template DagPlan plan_dag<float>(index_t, index_t, index_t,
                                 const ParallelGefmmConfigT<float>&);
template void run_task_dag<double>(Trans, Trans, index_t, index_t, index_t,
                                   double, const double*, index_t,
                                   const double*, index_t, double, double*,
                                   index_t,
                                   const ParallelGefmmConfigT<double>&,
                                   const DagPlan&, ArenaT<double>&);
template void run_task_dag<float>(Trans, Trans, index_t, index_t, index_t,
                                  float, const float*, index_t, const float*,
                                  index_t, float, float*, index_t,
                                  const ParallelGefmmConfigT<float>&,
                                  const DagPlan&, ArenaT<float>&);

}  // namespace strassen::parallel
