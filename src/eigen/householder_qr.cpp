#include "eigen/householder_qr.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

namespace strassen::eigen {

index_t PivotedQr::rank(double tol) const {
  const index_t kmax = std::min(qr.rows(), qr.cols());
  if (kmax == 0) return 0;
  const double r00 = std::abs(qr(0, 0));
  if (r00 == 0.0) return 0;
  index_t r = 0;
  for (index_t i = 0; i < kmax; ++i) {
    if (std::abs(qr(i, i)) > tol * r00) {
      ++r;
    } else {
      break;  // pivoting makes |R(i,i)| non-increasing
    }
  }
  return r;
}

PivotedQr qr_factor_pivoted(ConstView a) {
  const index_t m = a.rows, n = a.cols;
  PivotedQr f;
  f.qr = Matrix(m, n);
  copy(a, f.qr.view());
  f.jpvt.resize(static_cast<std::size_t>(n));
  std::iota(f.jpvt.begin(), f.jpvt.end(), index_t{0});
  const index_t kmax = std::min(m, n);
  f.tau.assign(static_cast<std::size_t>(kmax), 0.0);
  Matrix& qr = f.qr;

  for (index_t k = 0; k < kmax; ++k) {
    // Column pivot: bring the column with the largest trailing norm to k.
    // Norms are recomputed exactly each step -- O(mn^2) total, which is
    // fine at ISDA block sizes and avoids the classic downdating
    // cancellation problem.
    index_t best = k;
    double best_norm = -1.0;
    for (index_t j = k; j < n; ++j) {
      double s = 0.0;
      for (index_t i = k; i < m; ++i) s += qr(i, j) * qr(i, j);
      if (s > best_norm) {
        best_norm = s;
        best = j;
      }
    }
    if (best != k) {
      for (index_t i = 0; i < m; ++i) std::swap(qr(i, k), qr(i, best));
      std::swap(f.jpvt[static_cast<std::size_t>(k)],
                f.jpvt[static_cast<std::size_t>(best)]);
    }

    // Householder reflector annihilating qr(k+1:m, k).
    double normx = 0.0;
    for (index_t i = k; i < m; ++i) normx += qr(i, k) * qr(i, k);
    normx = std::sqrt(normx);
    if (normx == 0.0) {
      f.tau[static_cast<std::size_t>(k)] = 0.0;
      continue;
    }
    const double x0 = qr(k, k);
    const double alpha = (x0 >= 0.0) ? -normx : normx;
    const double v0 = x0 - alpha;
    // Scale so v(0) == 1 (stored implicitly); tau = (alpha - x0)/alpha in
    // the LAPACK convention, equivalently -v0/alpha.
    const double tau = -v0 / alpha;
    f.tau[static_cast<std::size_t>(k)] = tau;
    qr(k, k) = alpha;  // R diagonal
    if (v0 != 0.0) {
      for (index_t i = k + 1; i < m; ++i) qr(i, k) /= v0;
    }

    // Apply H = I - tau v v^T to the trailing columns.
    for (index_t j = k + 1; j < n; ++j) {
      double dot = qr(k, j);  // v(0) == 1
      for (index_t i = k + 1; i < m; ++i) dot += qr(i, k) * qr(i, j);
      const double w = tau * dot;
      qr(k, j) -= w;
      for (index_t i = k + 1; i < m; ++i) qr(i, j) -= w * qr(i, k);
    }
  }
  return f;
}

Matrix form_q(const PivotedQr& f) {
  const index_t m = f.rows();
  const index_t kmax = static_cast<index_t>(f.tau.size());
  Matrix q(m, m);
  set_identity(q.view());
  // Q = H_0 H_1 ... H_{kmax-1}; applying to I from the last reflector to
  // the first builds Q in O(m^2 kmax).
  for (index_t k = kmax - 1; k >= 0; --k) {
    const double tau = f.tau[static_cast<std::size_t>(k)];
    if (tau == 0.0) continue;
    for (index_t j = 0; j < m; ++j) {
      double dot = q(k, j);
      for (index_t i = k + 1; i < m; ++i) dot += f.qr(i, k) * q(i, j);
      const double w = tau * dot;
      q(k, j) -= w;
      for (index_t i = k + 1; i < m; ++i) q(i, j) -= w * f.qr(i, k);
    }
  }
  return q;
}

}  // namespace strassen::eigen
