// Householder QR factorization with column pivoting (rank-revealing).
//
// The ISDA eigensolver uses this to split a converged spectral projector P
// into range and null-space bases: A P(:, pivots) = Q R with the leading
// r = rank(P) columns of Q spanning range(P) and the rest spanning its
// orthogonal complement. Functionally a compact DGEQPF + DORGQR.
#pragma once

#include <vector>

#include "support/config.hpp"
#include "support/matrix.hpp"

namespace strassen::eigen {

/// Result of qr_factor_pivoted: A(:, jpvt) = Q R.
struct PivotedQr {
  Matrix qr;                  ///< R in the upper triangle, Householder
                              ///< vectors below the diagonal (v(0) == 1
                              ///< implicit)
  std::vector<double> tau;    ///< reflector coefficients, min(m, n)
  std::vector<index_t> jpvt;  ///< column permutation (0-based)

  index_t rows() const { return qr.rows(); }
  index_t cols() const { return qr.cols(); }

  /// Numerical rank: the number of diagonal entries of R with
  /// |R(i,i)| > tol * |R(0,0)| (column pivoting makes the diagonal
  /// non-increasing in magnitude).
  index_t rank(double tol = 1e-10) const;
};

/// Factors a (m x n) with column pivoting.
PivotedQr qr_factor_pivoted(ConstView a);

/// Forms the full m x m orthogonal Q of a factorization.
Matrix form_q(const PivotedQr& f);

}  // namespace strassen::eigen
