// ISDA: the Invariant Subspace Decomposition Algorithm symmetric
// eigensolver (PRISM project), the application study of Section 4.4.
//
// The algorithm is matrix-multiplication dominated, which is why the paper
// uses it to demonstrate DGEFMM as a drop-in DGEMM replacement:
//   1. Map the spectrum of A affinely into [0, 1] around a split point mu.
//   2. Iterate the incomplete beta function B <- B^2 (3I - 2B) -- two
//      matrix multiplications per step -- until B converges to the
//      spectral projector P onto the invariant subspace of eigenvalues
//      above mu.
//   3. Compute an orthonormal basis Q = [Q1 | Q2] of range(P) + null(P)
//      via rank-revealing QR, conjugate A' = Q^T A Q (two more matrix
//      multiplications), and recurse on the two diagonal blocks.
//   4. Finish small subproblems with Jacobi.
//
// The matrix-multiplication backend is injectable (GemmFn); the Table 6
// benchmark runs the identical solver with blas::dgemm and with
// core::dgefmm and reports total vs. MM time for each.
#pragma once

#include <vector>

#include "core/gemm_backend.hpp"
#include "support/config.hpp"
#include "support/matrix.hpp"

namespace strassen::eigen {

/// A DGEMM-compatible matrix-multiplication callback (see
/// core/gemm_backend.hpp; re-exported here for convenience).
using core::GemmFn;

/// GemmFn backed by the library's DGEMM (the baseline configuration).
inline GemmFn gemm_backend_dgemm() { return core::gemm_backend_dgemm(); }

/// GemmFn backed by DGEFMM -- the paper's "rename DGEMM to DGEFMM"
/// experiment.
inline GemmFn gemm_backend_dgefmm() { return core::gemm_backend_dgefmm(); }

struct IsdaOptions {
  index_t base_size = 24;      ///< subproblems at or below go to Jacobi
  int max_beta_iterations = 100;
  double projector_tol = 1e-12;   ///< on ||B^2 - B||_F / s
  int max_bisection_steps = 40;   ///< split-point searches per subproblem
  GemmFn gemm;                    ///< defaults to gemm_backend_dgemm()
};

struct IsdaStats {
  double total_seconds = 0.0;  ///< wall-clock for the whole solve
  double mm_seconds = 0.0;     ///< wall-clock inside the GemmFn
  count_t gemm_calls = 0;
  count_t beta_iterations = 0;  ///< total polynomial-iteration steps
  count_t splits = 0;           ///< successful divide steps
  count_t jacobi_blocks = 0;    ///< base cases solved by Jacobi
};

struct IsdaResult {
  std::vector<double> eigenvalues;  ///< ascending
  Matrix eigenvectors;              ///< orthonormal columns matching order
  IsdaStats stats;
};

/// Full eigendecomposition of the symmetric matrix `a`.
IsdaResult isda_eigensolver(ConstView a, const IsdaOptions& opts = IsdaOptions{});

}  // namespace strassen::eigen
