#include "eigen/jacobi.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "support/errors.hpp"

namespace strassen::eigen {

namespace {

// Frobenius norm of the strictly off-diagonal part.
double off_norm(ConstView a) {
  double sum = 0.0;
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i < a.rows; ++i) {
      if (i != j) sum += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(sum);
}

}  // namespace

int jacobi_eigensolver(MutView a, MutView v, std::vector<double>& eigenvalues,
                       const JacobiOptions& opts) {
  assert(a.rows == a.cols && v.rows == a.rows && v.cols == a.cols);
  const index_t n = a.rows;
  set_identity(v);
  eigenvalues.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return 0;
  if (n == 1) {
    eigenvalues[0] = a(0, 0);
    return 0;
  }

  const double fro = frobenius_norm(a);
  const double scale = fro > 0.0 ? fro : 1.0;
  const double target = opts.tol * scale;

  int sweep = 0;
  double prev_off = 1e300;
  for (; sweep < opts.max_sweeps; ++sweep) {
    const double off = off_norm(a);
    if (off <= target) break;
    // Roundoff floor: once the off-diagonal mass stops shrinking and is
    // already at the noise level, further sweeps only churn.
    if (off <= 1e-11 * scale && off > 0.5 * prev_off) break;
    prev_off = off;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        // Rotate rows/columns p and q of A (symmetric update).
        for (index_t i = 0; i < n; ++i) {
          const double aip = a(i, p);
          const double aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(i, q) = s * aip + c * aiq;
        }
        for (index_t i = 0; i < n; ++i) {
          const double api = a(p, i);
          const double aqi = a(q, i);
          a(p, i) = c * api - s * aqi;
          a(q, i) = s * api + c * aqi;
        }
        // Accumulate the rotation into the eigenvector matrix.
        for (index_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }
  if (off_norm(a) > 1e-11 * scale) {
    throw ConvergenceError("Jacobi eigensolver did not converge in " +
                           std::to_string(opts.max_sweeps) + " sweeps");
  }

  // Sort eigenvalues ascending, permuting eigenvector columns to match.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(),
            [&](index_t x, index_t y) { return a(x, x) < a(y, y); });
  Matrix v_sorted(n, n);
  for (index_t j = 0; j < n; ++j) {
    eigenvalues[static_cast<std::size_t>(j)] = a(order[j], order[j]);
    for (index_t i = 0; i < n; ++i) v_sorted(i, j) = v(i, order[j]);
  }
  copy(v_sorted.view(), v);
  return sweep;
}

}  // namespace strassen::eigen
