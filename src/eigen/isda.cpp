#include "eigen/isda.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numeric>
#include <utility>

#include "blas/gemm.hpp"
#include "core/dgefmm.hpp"
#include "eigen/householder_qr.hpp"
#include "eigen/jacobi.hpp"
#include "support/errors.hpp"
#include "support/timing.hpp"

namespace strassen::eigen {

namespace {

// Runs the solver over one subproblem tree.
class IsdaSolver {
 public:
  IsdaSolver(ConstView a, const IsdaOptions& opts)
      : opts_(opts),
        n_(a.rows),
        v_(n_, n_),
        eigenvalues_(static_cast<std::size_t>(n_), 0.0) {
    assert(a.rows == a.cols);
    gemm_ = opts_.gemm ? opts_.gemm : gemm_backend_dgemm();
    set_identity(v_.view());
    Matrix a0(n_, n_);
    copy(a, a0.view());
    Timer total;
    solve(std::move(a0), 0);
    stats_.total_seconds = total.seconds();
  }

  IsdaResult take_result() {
    sort_spectrum();
    IsdaResult r;
    r.eigenvalues = std::move(eigenvalues_);
    r.eigenvectors = std::move(v_);
    r.stats = stats_;
    return r;
  }

 private:
  // Timed, counted matrix multiply.
  void mm(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb,
          double beta, double* c, index_t ldc) {
    Timer t;
    gemm_(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    stats_.mm_seconds += t.seconds();
    ++stats_.gemm_calls;
  }

  // Gershgorin bounds of a symmetric matrix.
  static void gershgorin(ConstView a, double& lo, double& hi) {
    lo = 1e300;
    hi = -1e300;
    for (index_t i = 0; i < a.rows; ++i) {
      double radius = 0.0;
      for (index_t j = 0; j < a.cols; ++j) {
        if (j != i) radius += std::abs(a(i, j));
      }
      lo = std::min(lo, a(i, i) - radius);
      hi = std::max(hi, a(i, i) + radius);
    }
  }

  // Iterates the incomplete beta polynomial until B is (numerically) the
  // spectral projector of `a` onto eigenvalues > mu. Returns false if the
  // iteration budget is exhausted before convergence (an eigenvalue too
  // close to mu) -- the caller then tries another split point.
  bool projector(const Matrix& a, double mu, double radius, Matrix& b,
                 Matrix& t1, Matrix& t2) {
    const index_t s = a.rows();
    // Affine map: B = (A - (mu - radius) I) / (2 radius); spectrum lands in
    // [0, 1] with mu mapped to 1/2.
    const double scale = 1.0 / (2.0 * radius);
    for (index_t j = 0; j < s; ++j) {
      for (index_t i = 0; i < s; ++i) {
        b(i, j) = scale * a(i, j);
      }
      b(j, j) += 0.5 - scale * mu;
    }
    for (int it = 0; it < opts_.max_beta_iterations; ++it) {
      ++stats_.beta_iterations;
      // t1 = B^2 ; t2 = B^2 * B ; B = 3 t1 - 2 t2.
      mm(Trans::no, Trans::no, s, s, s, 1.0, b.data(), s, b.data(), s, 0.0,
         t1.data(), s);
      // Convergence check: ||B^2 - B||_F (projector residual).
      double resid = 0.0;
      for (index_t j = 0; j < s; ++j) {
        for (index_t i = 0; i < s; ++i) {
          const double d = t1(i, j) - b(i, j);
          resid += d * d;
        }
      }
      if (std::sqrt(resid) <= opts_.projector_tol * static_cast<double>(s)) {
        return true;
      }
      mm(Trans::no, Trans::no, s, s, s, 1.0, t1.data(), s, b.data(), s, 0.0,
         t2.data(), s);
      for (index_t j = 0; j < s; ++j) {
        for (index_t i = 0; i < s; ++i) {
          b(i, j) = 3.0 * t1(i, j) - 2.0 * t2(i, j);
        }
      }
    }
    return false;
  }

  void solve_base(Matrix a, index_t offset) {
    const index_t s = a.rows();
    Matrix vb(s, s);
    std::vector<double> w;
    jacobi_eigensolver(a.view(), vb.view(), w);
    for (index_t j = 0; j < s; ++j) {
      eigenvalues_[static_cast<std::size_t>(offset + j)] =
          w[static_cast<std::size_t>(j)];
    }
    rotate_basis(offset, s, vb);
    ++stats_.jacobi_blocks;
  }

  // V(:, offset:offset+s) <- V(:, offset:offset+s) * Q.
  void rotate_basis(index_t offset, index_t s, const Matrix& q) {
    Matrix tmp(n_, s);
    mm(Trans::no, Trans::no, n_, s, s, 1.0, &v_(0, offset), v_.ld(), q.data(),
       q.ld(), 0.0, tmp.data(), tmp.ld());
    for (index_t j = 0; j < s; ++j) {
      for (index_t i = 0; i < n_; ++i) v_(i, offset + j) = tmp(i, j);
    }
  }

  void solve(Matrix a, index_t offset) {
    const index_t s = a.rows();
    if (s <= opts_.base_size) {
      solve_base(std::move(a), offset);
      return;
    }

    double lo, hi;
    gershgorin(a.view(), lo, hi);
    const double spread = hi - lo;
    if (spread <= 1e-13 * std::max(std::abs(lo), std::abs(hi)) ||
        spread == 0.0) {
      // Numerically a multiple of the identity.
      for (index_t j = 0; j < s; ++j) {
        eigenvalues_[static_cast<std::size_t>(offset + j)] = a(j, j);
      }
      return;
    }

    Matrix b(s, s), t1(s, s), t2(s, s);
    double blo = lo, bhi = hi;
    index_t r = -1;
    for (int step = 0; step < opts_.max_bisection_steps; ++step) {
      const double mu = 0.5 * (blo + bhi);
      const double radius = std::max(hi - mu, mu - lo);
      if (!projector(a, mu, radius, b, t1, t2)) {
        // An eigenvalue sits (nearly) on mu; nudge the split point.
        bhi = mu + 0.25 * (bhi - mu);
        continue;
      }
      double trace = 0.0;
      for (index_t i = 0; i < s; ++i) trace += b(i, i);
      r = static_cast<index_t>(std::llround(trace));
      if (r <= 0) {
        bhi = mu;  // everything below mu: lower the split point
        r = -1;
        continue;
      }
      if (r >= s) {
        blo = mu;  // everything above mu: raise the split point
        r = -1;
        continue;
      }
      break;
    }
    if (r <= 0 || r >= s) {
      // Could not find a separating split point (tight cluster): fall back
      // to Jacobi, which handles clusters unconditionally.
      solve_base(std::move(a), offset);
      return;
    }

    // Rank-revealing QR of the projector: Q1 spans range(P) (eigenvalues
    // above mu), Q2 its complement.
    const PivotedQr f = qr_factor_pivoted(b.view());
    Matrix q = form_q(f);

    // Conjugate: A' = Q^T A Q (two matrix multiplications).
    mm(Trans::no, Trans::no, s, s, s, 1.0, a.data(), s, q.data(), s, 0.0,
       t1.data(), s);
    mm(Trans::transpose, Trans::no, s, s, s, 1.0, q.data(), s, t1.data(), s,
       0.0, t2.data(), s);

    rotate_basis(offset, s, q);
    ++stats_.splits;

    // The invariant-subspace structure makes A' block diagonal up to
    // roundoff; recurse on the two diagonal blocks.
    // Symmetrize while extracting: Q^T A Q is symmetric only to roundoff,
    // and downstream Jacobi/Gershgorin logic assumes exact symmetry.
    Matrix a1(r, r), a2(s - r, s - r);
    for (index_t j = 0; j < r; ++j) {
      for (index_t i = 0; i < r; ++i) {
        a1(i, j) = 0.5 * (t2(i, j) + t2(j, i));
      }
    }
    for (index_t j = 0; j < s - r; ++j) {
      for (index_t i = 0; i < s - r; ++i) {
        a2(i, j) = 0.5 * (t2(r + i, r + j) + t2(r + j, r + i));
      }
    }
    solve(std::move(a1), offset);
    solve(std::move(a2), offset + r);
  }

  void sort_spectrum() {
    std::vector<index_t> order(static_cast<std::size_t>(n_));
    std::iota(order.begin(), order.end(), index_t{0});
    std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
      return eigenvalues_[static_cast<std::size_t>(x)] <
             eigenvalues_[static_cast<std::size_t>(y)];
    });
    std::vector<double> w_sorted(static_cast<std::size_t>(n_));
    Matrix v_sorted(n_, n_);
    for (index_t j = 0; j < n_; ++j) {
      w_sorted[static_cast<std::size_t>(j)] =
          eigenvalues_[static_cast<std::size_t>(order[j])];
      for (index_t i = 0; i < n_; ++i) v_sorted(i, j) = v_(i, order[j]);
    }
    eigenvalues_ = std::move(w_sorted);
    v_ = std::move(v_sorted);
  }

  const IsdaOptions& opts_;
  GemmFn gemm_;
  index_t n_;
  Matrix v_;
  std::vector<double> eigenvalues_;
  IsdaStats stats_;
};

}  // namespace

IsdaResult isda_eigensolver(ConstView a, const IsdaOptions& opts) {
  IsdaSolver solver(a, opts);
  return solver.take_result();
}

}  // namespace strassen::eigen
