// Cyclic Jacobi eigensolver for dense symmetric matrices.
//
// The base-case solver of the ISDA divide-and-conquer eigensolver
// (Section 4.4): once a subproblem is small, Jacobi finishes it. Jacobi is
// slow but unconditionally accurate, which also makes it the oracle the
// tests compare ISDA against.
#pragma once

#include <vector>

#include "support/config.hpp"
#include "support/matrix.hpp"

namespace strassen::eigen {

struct JacobiOptions {
  int max_sweeps = 64;
  /// Convergence when off(A) <= tol * ||A||_F, where off(A) is the
  /// Frobenius norm of the off-diagonal part.
  double tol = 1e-14;
};

/// Full eigendecomposition of the symmetric matrix held in `a`.
///
/// On return `a` is overwritten (its diagonal holds the unsorted
/// eigenvalues), `v`'s columns are the orthonormal eigenvectors, and
/// `eigenvalues` holds the eigenvalues sorted ascending with `v`'s columns
/// permuted to match. Returns the number of sweeps used.
///
/// Throws ConvergenceError if max_sweeps is exhausted.
int jacobi_eigensolver(MutView a, MutView v, std::vector<double>& eigenvalues,
                       const JacobiOptions& opts = JacobiOptions{});

}  // namespace strassen::eigen
