// SGEFMM: the single-precision twin of DGEFMM (core/dgefmm.hpp).
//
// Computes C <- alpha * op(A) * op(B) + beta * C exactly like the Level 3
// BLAS SGEMM, but uses the Winograd variant of Strassen's algorithm above
// the cutoff. It is the float instantiation of the same gefmm driver
// template dgefmm runs: identical argument checking, failure contract,
// schedule interpreters, and workspace accounting (element counts are
// precision-independent); only the element type -- and with it the packed
// micro-kernel table, the arena, and the BLAS fallback -- changes. A
// program calls it wherever it called SGEMM; no other change is required.
#pragma once

#include "core/types.hpp"
#include "core/workspace.hpp"
#include "support/matrix.hpp"

namespace strassen::core {

/// C <- alpha * op(A) * op(B) + beta * C in single precision.
///
/// Arguments mirror SGEMM: op(A) is m x k, op(B) is k x n, C is m x n,
/// all column-major with leading dimensions lda/ldb/ldc.
///
/// Returns 0 on success, or the 1-based index of the first invalid argument
/// (BLAS XERBLA convention): 3 for m < 0, 4 for n < 0, 5 for k < 0, 8 for
/// lda too small, 10 for ldb, 13 for ldc.
///
/// Failure contract (DESIGN.md section 7): all fallible workspace
/// acquisition happens before the first write to C. If it fails, the
/// behaviour follows cfg.on_failure -- strict (default) throws the typed
/// error (WorkspaceError / std::bad_alloc) with C untouched; fallback
/// silently degrades to the workspace-free blas::sgemm path, records it in
/// cfg.stats->fallbacks, and returns 0 with a correct product. The
/// exception-free C/Fortran bindings live in core/cabi.hpp.
[[nodiscard]] int sgefmm(Trans transa, Trans transb, index_t m, index_t n,
                         index_t k, float alpha, const float* a, index_t lda,
                         const float* b, index_t ldb, float beta, float* c,
                         index_t ldc, const SgefmmConfig& cfg = SgefmmConfig{});

/// View-based convenience wrapper: C <- alpha*A*B + beta*C where A and B
/// may be transposed views and C is column-major.
void sgefmm_view(float alpha, ConstViewF a, ConstViewF b, float beta,
                 MutViewF c, const SgefmmConfig& cfg = SgefmmConfig{});

/// Workspace (in floats) the corresponding sgefmm call allocates at peak;
/// size a reusable ArenaF with this to make repeated calls allocation-free.
[[nodiscard]] count_t sgefmm_workspace_floats(
    index_t m, index_t n, index_t k, float beta,
    const SgefmmConfig& cfg = SgefmmConfig{});

}  // namespace strassen::core
