#include "core/add_kernels.hpp"

#include <cassert>

#include "blas/kernels.hpp"
#include "support/opcount.hpp"

namespace strassen::core {

namespace {

// Applies `op(d_elem, x_elem, y_elem)` over all elements: the strided
// fallback for transposed operands. The destination is required to be
// column-major so the inner loop is unit-stride on d.
template <class F>
void zip2(ConstView x, ConstView y, MutView d, F&& op) {
  assert(x.rows == d.rows && x.cols == d.cols);
  assert(y.rows == d.rows && y.cols == d.cols);
  assert(d.col_major());
  for (index_t j = 0; j < d.cols; ++j) {
    double* dj = d.p + j * d.cs;
    const double* xj = x.p + j * x.cs;
    const double* yj = y.p + j * y.cs;
    for (index_t i = 0; i < d.rows; ++i) {
      dj[i] = op(xj[i * x.rs], yj[i * y.rs]);
    }
  }
}

template <class F>
void zip1(MutView d, ConstView x, F&& op) {
  assert(x.rows == d.rows && x.cols == d.cols);
  assert(d.col_major());
  for (index_t j = 0; j < d.cols; ++j) {
    double* dj = d.p + j * d.cs;
    const double* xj = x.p + j * x.cs;
    for (index_t i = 0; i < d.rows; ++i) {
      dj[i] = op(dj[i], xj[i * x.rs]);
    }
  }
}

// Columnwise dispatch through the active micro-kernel's contiguous vector
// helpers (blas/kernels.hpp). Callers check that every operand column is
// unit-stride before routing here; transposed operands (rs != 1) take the
// zip fallbacks above. The helpers live in the ISA-specific kernel TUs, so
// the combines run at the same vector width as the GEMM itself.
template <class F>
void cols2(ConstView x, ConstView y, MutView d, F&& col) {
  assert(x.rows == d.rows && x.cols == d.cols);
  assert(y.rows == d.rows && y.cols == d.cols);
  assert(d.col_major());
  for (index_t j = 0; j < d.cols; ++j) {
    col(x.p + j * x.cs, y.p + j * y.cs, d.p + j * d.cs, d.rows);
  }
}

template <class F>
void cols1(MutView d, ConstView x, F&& col) {
  assert(x.rows == d.rows && x.cols == d.cols);
  assert(d.col_major());
  for (index_t j = 0; j < d.cols; ++j) {
    col(x.p + j * x.cs, d.p + j * d.cs, d.rows);
  }
}

count_t elems(MutView d) { return static_cast<count_t>(d.rows) * d.cols; }

}  // namespace

void add(ConstView x, ConstView y, MutView d) {
  if (x.rs == 1 && y.rs == 1) {
    const blas::KernelInfo& kv = blas::active_kernel();
    cols2(x, y, d,
          [&](const double* xc, const double* yc, double* dc, index_t n) {
            kv.vadd(xc, yc, dc, n);
          });
  } else {
    zip2(x, y, d, [](double a, double b) { return a + b; });
  }
  opcount::record_add(elems(d));
}

void sub(ConstView x, ConstView y, MutView d) {
  if (x.rs == 1 && y.rs == 1) {
    const blas::KernelInfo& kv = blas::active_kernel();
    cols2(x, y, d,
          [&](const double* xc, const double* yc, double* dc, index_t n) {
            kv.vsub(xc, yc, dc, n);
          });
  } else {
    zip2(x, y, d, [](double a, double b) { return a - b; });
  }
  opcount::record_add(elems(d));
}

void add_inplace(MutView d, ConstView x) {
  if (x.rs == 1) {
    const blas::KernelInfo& kv = blas::active_kernel();
    cols1(d, x, [&](const double* xc, double* dc, index_t n) {
      kv.vaxpby(1.0, xc, 1.0, dc, n);
    });
  } else {
    zip1(d, x, [](double dv, double xv) { return dv + xv; });
  }
  opcount::record_add(elems(d));
}

void sub_inplace(MutView d, ConstView x) {
  if (x.rs == 1) {
    const blas::KernelInfo& kv = blas::active_kernel();
    cols1(d, x, [&](const double* xc, double* dc, index_t n) {
      kv.vaxpby(-1.0, xc, 1.0, dc, n);
    });
  } else {
    zip1(d, x, [](double dv, double xv) { return dv - xv; });
  }
  opcount::record_add(elems(d));
}

void rsub_inplace(MutView d, ConstView x) {
  if (x.rs == 1) {
    const blas::KernelInfo& kv = blas::active_kernel();
    cols1(d, x, [&](const double* xc, double* dc, index_t n) {
      kv.vaxpby(1.0, xc, -1.0, dc, n);
    });
  } else {
    zip1(d, x, [](double dv, double xv) { return xv - dv; });
  }
  opcount::record_add(elems(d));
}

void copy_into(ConstView x, MutView d) {
  // vaxpby with b == 0 never reads d, so this is safe even when d is
  // uninitialized arena storage.
  if (x.rs == 1) {
    const blas::KernelInfo& kv = blas::active_kernel();
    cols1(d, x, [&](const double* xc, double* dc, index_t n) {
      kv.vaxpby(1.0, xc, 0.0, dc, n);
    });
  } else {
    zip1(d, x, [](double, double xv) { return xv; });
  }
}

void axpy(double a, ConstView x, MutView d) {
  if (a == 0.0) return;
  if (a == 1.0) {
    add_inplace(d, x);
    return;
  }
  if (a == -1.0) {
    sub_inplace(d, x);
    return;
  }
  if (x.rs == 1) {
    const blas::KernelInfo& kv = blas::active_kernel();
    cols1(d, x, [&](const double* xc, double* dc, index_t n) {
      kv.vaxpby(a, xc, 1.0, dc, n);
    });
  } else {
    zip1(d, x, [a](double dv, double xv) { return dv + a * xv; });
  }
  opcount::record_scale(elems(d));
  opcount::record_add(elems(d));
}

void scale(double b, MutView d) {
  if (b == 1.0) return;
  if (b == 0.0) {
    for (index_t j = 0; j < d.cols; ++j) {
      double* dj = d.p + j * d.cs;
      for (index_t i = 0; i < d.rows; ++i) dj[i] = 0.0;
    }
    return;
  }
  for (index_t j = 0; j < d.cols; ++j) {
    double* dj = d.p + j * d.cs;
    for (index_t i = 0; i < d.rows; ++i) dj[i] *= b;
  }
  opcount::record_scale(elems(d));
}

void axpby(double a, ConstView x, double b, MutView d) {
  if (b == 0.0) {
    if (a == 1.0) {
      copy_into(x, d);
    } else if (x.rs == 1) {
      const blas::KernelInfo& kv = blas::active_kernel();
      cols1(d, x, [&](const double* xc, double* dc, index_t n) {
        kv.vaxpby(a, xc, 0.0, dc, n);
      });
      opcount::record_scale(elems(d));
    } else {
      zip1(d, x, [a](double, double xv) { return a * xv; });
      opcount::record_scale(elems(d));
    }
    return;
  }
  if (a == 1.0 && b == 1.0) {
    add_inplace(d, x);
    return;
  }
  if (x.rs == 1) {
    const blas::KernelInfo& kv = blas::active_kernel();
    cols1(d, x, [&](const double* xc, double* dc, index_t n) {
      kv.vaxpby(a, xc, b, dc, n);
    });
  } else {
    zip1(d, x, [a, b](double dv, double xv) { return a * xv + b * dv; });
  }
  if (a != 1.0) opcount::record_scale(elems(d));
  if (b != 1.0) opcount::record_scale(elems(d));
  opcount::record_add(elems(d));
}

}  // namespace strassen::core
