#include "core/add_kernels.hpp"

#include <cassert>

#include "blas/kernels.hpp"
#include "support/opcount.hpp"

namespace strassen::core {

namespace {

// Applies `op(d_elem, x_elem, y_elem)` over all elements: the strided
// fallback for transposed operands. The destination is required to be
// column-major so the inner loop is unit-stride on d.
template <class T, class F>
void zip2(BasicView<const T> x, BasicView<const T> y, BasicView<T> d,
          F&& op) {
  assert(x.rows == d.rows && x.cols == d.cols);
  assert(y.rows == d.rows && y.cols == d.cols);
  assert(d.col_major());
  for (index_t j = 0; j < d.cols; ++j) {
    T* dj = d.p + j * d.cs;
    const T* xj = x.p + j * x.cs;
    const T* yj = y.p + j * y.cs;
    for (index_t i = 0; i < d.rows; ++i) {
      dj[i] = op(xj[i * x.rs], yj[i * y.rs]);
    }
  }
}

template <class T, class F>
void zip1(BasicView<T> d, BasicView<const T> x, F&& op) {
  assert(x.rows == d.rows && x.cols == d.cols);
  assert(d.col_major());
  for (index_t j = 0; j < d.cols; ++j) {
    T* dj = d.p + j * d.cs;
    const T* xj = x.p + j * x.cs;
    for (index_t i = 0; i < d.rows; ++i) {
      dj[i] = op(dj[i], xj[i * x.rs]);
    }
  }
}

// Columnwise dispatch through the active micro-kernel's contiguous vector
// helpers (blas/kernels.hpp). Callers check that every operand column is
// unit-stride before routing here; transposed operands (rs != 1) take the
// zip fallbacks above. The helpers live in the ISA-specific kernel TUs, so
// the combines run at the same vector width as the GEMM itself.
template <class T, class F>
void cols2(BasicView<const T> x, BasicView<const T> y, BasicView<T> d,
           F&& col) {
  assert(x.rows == d.rows && x.cols == d.cols);
  assert(y.rows == d.rows && y.cols == d.cols);
  assert(d.col_major());
  for (index_t j = 0; j < d.cols; ++j) {
    col(x.p + j * x.cs, y.p + j * y.cs, d.p + j * d.cs, d.rows);
  }
}

template <class T, class F>
void cols1(BasicView<T> d, BasicView<const T> x, F&& col) {
  assert(x.rows == d.rows && x.cols == d.cols);
  assert(d.col_major());
  for (index_t j = 0; j < d.cols; ++j) {
    col(x.p + j * x.cs, d.p + j * d.cs, d.rows);
  }
}

template <class T>
count_t elems(BasicView<T> d) {
  return static_cast<count_t>(d.rows) * d.cols;
}

template <class T>
void add_t(BasicView<const T> x, BasicView<const T> y, BasicView<T> d) {
  if (x.rs == 1 && y.rs == 1) {
    const blas::KernelInfoT<T>& kv = blas::active_kernel_t<T>();
    cols2<T>(x, y, d, [&](const T* xc, const T* yc, T* dc, index_t n) {
      kv.vadd(xc, yc, dc, n);
    });
  } else {
    zip2<T>(x, y, d, [](T a, T b) { return a + b; });
  }
  opcount::record_add(elems(d));
}

template <class T>
void sub_t(BasicView<const T> x, BasicView<const T> y, BasicView<T> d) {
  if (x.rs == 1 && y.rs == 1) {
    const blas::KernelInfoT<T>& kv = blas::active_kernel_t<T>();
    cols2<T>(x, y, d, [&](const T* xc, const T* yc, T* dc, index_t n) {
      kv.vsub(xc, yc, dc, n);
    });
  } else {
    zip2<T>(x, y, d, [](T a, T b) { return a - b; });
  }
  opcount::record_add(elems(d));
}

template <class T>
void add_inplace_t(BasicView<T> d, BasicView<const T> x) {
  if (x.rs == 1) {
    const blas::KernelInfoT<T>& kv = blas::active_kernel_t<T>();
    cols1<T>(d, x, [&](const T* xc, T* dc, index_t n) {
      kv.vaxpby(T(1), xc, T(1), dc, n);
    });
  } else {
    zip1<T>(d, x, [](T dv, T xv) { return dv + xv; });
  }
  opcount::record_add(elems(d));
}

template <class T>
void sub_inplace_t(BasicView<T> d, BasicView<const T> x) {
  if (x.rs == 1) {
    const blas::KernelInfoT<T>& kv = blas::active_kernel_t<T>();
    cols1<T>(d, x, [&](const T* xc, T* dc, index_t n) {
      kv.vaxpby(T(-1), xc, T(1), dc, n);
    });
  } else {
    zip1<T>(d, x, [](T dv, T xv) { return dv - xv; });
  }
  opcount::record_add(elems(d));
}

template <class T>
void rsub_inplace_t(BasicView<T> d, BasicView<const T> x) {
  if (x.rs == 1) {
    const blas::KernelInfoT<T>& kv = blas::active_kernel_t<T>();
    cols1<T>(d, x, [&](const T* xc, T* dc, index_t n) {
      kv.vaxpby(T(1), xc, T(-1), dc, n);
    });
  } else {
    zip1<T>(d, x, [](T dv, T xv) { return xv - dv; });
  }
  opcount::record_add(elems(d));
}

template <class T>
void copy_into_t(BasicView<const T> x, BasicView<T> d) {
  // vaxpby with b == 0 never reads d, so this is safe even when d is
  // uninitialized arena storage.
  if (x.rs == 1) {
    const blas::KernelInfoT<T>& kv = blas::active_kernel_t<T>();
    cols1<T>(d, x, [&](const T* xc, T* dc, index_t n) {
      kv.vaxpby(T(1), xc, T(0), dc, n);
    });
  } else {
    zip1<T>(d, x, [](T, T xv) { return xv; });
  }
}

template <class T>
void axpy_t(T a, BasicView<const T> x, BasicView<T> d) {
  if (a == T(0)) return;
  if (a == T(1)) {
    add_inplace_t<T>(d, x);
    return;
  }
  if (a == T(-1)) {
    sub_inplace_t<T>(d, x);
    return;
  }
  if (x.rs == 1) {
    const blas::KernelInfoT<T>& kv = blas::active_kernel_t<T>();
    cols1<T>(d, x, [&](const T* xc, T* dc, index_t n) {
      kv.vaxpby(a, xc, T(1), dc, n);
    });
  } else {
    zip1<T>(d, x, [a](T dv, T xv) { return dv + a * xv; });
  }
  opcount::record_scale(elems(d));
  opcount::record_add(elems(d));
}

template <class T>
void scale_t(T b, BasicView<T> d) {
  if (b == T(1)) return;
  if (b == T(0)) {
    for (index_t j = 0; j < d.cols; ++j) {
      T* dj = d.p + j * d.cs;
      for (index_t i = 0; i < d.rows; ++i) dj[i] = T(0);
    }
    return;
  }
  for (index_t j = 0; j < d.cols; ++j) {
    T* dj = d.p + j * d.cs;
    for (index_t i = 0; i < d.rows; ++i) dj[i] *= b;
  }
  opcount::record_scale(elems(d));
}

template <class T>
void axpby_t(T a, BasicView<const T> x, T b, BasicView<T> d) {
  if (b == T(0)) {
    if (a == T(1)) {
      copy_into_t<T>(x, d);
    } else if (x.rs == 1) {
      const blas::KernelInfoT<T>& kv = blas::active_kernel_t<T>();
      cols1<T>(d, x, [&](const T* xc, T* dc, index_t n) {
        kv.vaxpby(a, xc, T(0), dc, n);
      });
      opcount::record_scale(elems(d));
    } else {
      zip1<T>(d, x, [a](T, T xv) { return a * xv; });
      opcount::record_scale(elems(d));
    }
    return;
  }
  if (a == T(1) && b == T(1)) {
    add_inplace_t<T>(d, x);
    return;
  }
  if (x.rs == 1) {
    const blas::KernelInfoT<T>& kv = blas::active_kernel_t<T>();
    cols1<T>(d, x, [&](const T* xc, T* dc, index_t n) {
      kv.vaxpby(a, xc, b, dc, n);
    });
  } else {
    zip1<T>(d, x, [a, b](T dv, T xv) { return a * xv + b * dv; });
  }
  if (a != T(1)) opcount::record_scale(elems(d));
  if (b != T(1)) opcount::record_scale(elems(d));
  opcount::record_add(elems(d));
}

}  // namespace

void add(ConstView x, ConstView y, MutView d) { add_t<double>(x, y, d); }
void add(ConstViewF x, ConstViewF y, MutViewF d) { add_t<float>(x, y, d); }

void sub(ConstView x, ConstView y, MutView d) { sub_t<double>(x, y, d); }
void sub(ConstViewF x, ConstViewF y, MutViewF d) { sub_t<float>(x, y, d); }

void add_inplace(MutView d, ConstView x) { add_inplace_t<double>(d, x); }
void add_inplace(MutViewF d, ConstViewF x) { add_inplace_t<float>(d, x); }

void sub_inplace(MutView d, ConstView x) { sub_inplace_t<double>(d, x); }
void sub_inplace(MutViewF d, ConstViewF x) { sub_inplace_t<float>(d, x); }

void rsub_inplace(MutView d, ConstView x) { rsub_inplace_t<double>(d, x); }
void rsub_inplace(MutViewF d, ConstViewF x) { rsub_inplace_t<float>(d, x); }

void copy_into(ConstView x, MutView d) { copy_into_t<double>(x, d); }
void copy_into(ConstViewF x, MutViewF d) { copy_into_t<float>(x, d); }

void axpy(double a, ConstView x, MutView d) { axpy_t<double>(a, x, d); }
void axpy(float a, ConstViewF x, MutViewF d) { axpy_t<float>(a, x, d); }

void scale(double b, MutView d) { scale_t<double>(b, d); }
void scale(float b, MutViewF d) { scale_t<float>(b, d); }

void axpby(double a, ConstView x, double b, MutView d) {
  axpby_t<double>(a, x, b, d);
}
void axpby(float a, ConstViewF x, float b, MutViewF d) {
  axpby_t<float>(a, x, b, d);
}

}  // namespace strassen::core
