#include "core/padding.hpp"

#include "core/add_kernels.hpp"

namespace strassen::core::detail {

namespace {

// Allocates an mp x np arena matrix, zero-fills it, and copies src into its
// upper-left corner.
template <class T>
BasicView<T> padded_copy(ArenaT<T>& arena, BasicView<const T> src, index_t mp,
                         index_t np) {
  BasicView<T> dst = arena_matrix(arena, mp, np);
  fill(dst, T(0));
  copy_into(src, dst.block(0, 0, src.rows, src.cols));
  return dst;
}

}  // namespace

template <class T>
void pad_dynamic(T alpha, BasicView<const T> a, BasicView<const T> b, T beta,
                 BasicView<T> c, CtxT<T>& ctx, int depth) {
  const index_t m = c.rows, n = c.cols, k = a.cols;
  const index_t mp = m + (m & 1);
  const index_t kp = k + (k & 1);
  const index_t np = n + (n & 1);
  ArenaScopeT scope(*ctx.arena);
  BasicView<T> ap = padded_copy<T>(*ctx.arena, a, mp, kp);
  BasicView<T> bp = padded_copy<T>(*ctx.arena, b, kp, np);
  BasicView<T> cp = padded_copy<T>(*ctx.arena, c, mp, np);
  if (ctx.stats != nullptr) ctx.stats->pad_copies += 3;
  fmm<T>(alpha, ap, bp, beta, cp, ctx, depth);
  copy_into(BasicView<const T>(cp.block(0, 0, m, n)), c);
}

int static_padding_depth(const CutoffCriterion& cut, index_t m, index_t k,
                         index_t n) {
  int d = 0;
  while (m >= 2 && k >= 2 && n >= 2 && !cut.stop(m, k, n, d)) {
    m = (m + 1) / 2;
    k = (k + 1) / 2;
    n = (n + 1) / 2;
    ++d;
  }
  return d;
}

index_t pad_up(index_t x, int levels) {
  const index_t unit = index_t{1} << levels;
  return (x + unit - 1) / unit * unit;
}

template <class T>
void pad_static(T alpha, BasicView<const T> a, BasicView<const T> b, T beta,
                BasicView<T> c, CtxT<T>& ctx) {
  const index_t m = c.rows, n = c.cols, k = a.cols;
  const int levels = static_padding_depth(ctx.cfg->cutoff, m, k, n);
  const index_t mp = pad_up(m, levels);
  const index_t kp = pad_up(k, levels);
  const index_t np = pad_up(n, levels);
  if (mp == m && kp == k && np == n) {
    fmm<T>(alpha, a, b, beta, c, ctx, 0);
    return;
  }
  ArenaScopeT scope(*ctx.arena);
  BasicView<T> ap = padded_copy<T>(*ctx.arena, a, mp, kp);
  BasicView<T> bp = padded_copy<T>(*ctx.arena, b, kp, np);
  BasicView<T> cp = padded_copy<T>(*ctx.arena, c, mp, np);
  if (ctx.stats != nullptr) ctx.stats->pad_copies += 3;
  fmm<T>(alpha, ap, bp, beta, cp, ctx, 0);
  copy_into(BasicView<const T>(cp.block(0, 0, m, n)), c);
}

template void pad_dynamic<double>(double, ConstView, ConstView, double,
                                  MutView, CtxT<double>&, int);
template void pad_dynamic<float>(float, ConstViewF, ConstViewF, float,
                                 MutViewF, CtxT<float>&, int);
template void pad_static<double>(double, ConstView, ConstView, double,
                                 MutView, CtxT<double>&);
template void pad_static<float>(float, ConstViewF, ConstViewF, float,
                                MutViewF, CtxT<float>&);

}  // namespace strassen::core::detail
