#include "core/workspace.hpp"

#include <algorithm>

#include "core/padding.hpp"
#include "core/tuned_policy.hpp"
#include "core/winograd_fused.hpp"
#include "verify/proofs.hpp"

namespace strassen::core {

namespace {

Scheme resolve(Scheme s, bool beta_zero) {
  // The fused schedule runs the classic automatic schedules below its
  // fusion depth, so it resolves like `automatic` here.
  if (s == Scheme::automatic || s == Scheme::fused) {
    return beta_zero ? Scheme::strassen1 : Scheme::strassen2;
  }
  return s;
}

// Per-level charge of one verified schedule table: the interpreter
// allocates exactly the table's declared temporaries, and the pebble pass
// (verify/proofs.hpp) has static_asserted that Schedule::footprint is the
// tight per-shape peak of those declarations, so charging the footprint is
// charging the implementation.
count_t per_level(const verify::Schedule& s, index_t m2, index_t k2,
                  index_t n2) {
  return verify::footprint_doubles(s.footprint, m2, k2, n2);
}

// Mirrors detail::fmm's allocation pattern exactly.
count_t ws(index_t m, index_t k, index_t n, bool beta_zero,
           const DgefmmConfig& cfg, int depth) {
  if (m == 0 || n == 0) return 0;
  if (m < 2 || k < 2 || n < 2 || cfg.cutoff.stop(m, k, n, depth)) return 0;

  const bool odd = ((m | k | n) & 1) != 0;
  if (odd) {
    switch (cfg.odd) {
      case OddStrategy::dynamic_peeling:
        break;
      case OddStrategy::dynamic_padding: {
        const index_t mp = m + (m & 1), kp = k + (k & 1), np = n + (n & 1);
        return static_cast<count_t>(mp) * kp + static_cast<count_t>(kp) * np +
               static_cast<count_t>(mp) * np +
               ws(mp, kp, np, beta_zero, cfg, depth);
      }
      case OddStrategy::static_padding:
        return 0;  // odd inside a statically padded recursion => DGEMM
    }
  }

  const index_t m2 = (m & ~index_t{1}) / 2;
  const index_t k2 = (k & ~index_t{1}) / 2;
  const index_t n2 = (n & ~index_t{1}) / 2;

  switch (resolve(cfg.scheme, beta_zero)) {
    case Scheme::automatic:  // resolved above
    case Scheme::fused:      // resolved above
    case Scheme::strassen1: {
      if (beta_zero) {
        return per_level(verify::kStrassen1Beta0, m2, k2, n2) +
               ws(m2, k2, n2, true, cfg, depth + 1);
      }
      // All seven sub-products are beta == 0 multiplies.
      return per_level(verify::kStrassen1General, m2, k2, n2) +
             ws(m2, k2, n2, true, cfg, depth + 1);
    }
    case Scheme::strassen2:
      // Children are a mix of pure multiplies (beta == 0) and
      // multiply-accumulates; size for the larger of the two.
      return per_level(verify::kStrassen2, m2, k2, n2) +
             std::max(ws(m2, k2, n2, true, cfg, depth + 1),
                      ws(m2, k2, n2, false, cfg, depth + 1));
    case Scheme::original: {
      const count_t ctmp = beta_zero ? 0
                                     : static_cast<count_t>(m & ~index_t{1}) *
                                           (n & ~index_t{1});
      return ctmp + per_level(verify::kOriginalBeta0, m2, k2, n2) +
             ws(m2, k2, n2, true, cfg, depth + 1);
    }
  }
  return 0;
}

// Mirrors detail::fmm_fused: fused levels allocate nothing (operand sums
// live in the BLAS pack buffers, U accumulations in C itself); only leaves
// the cutoff still wants to recurse on materialize into the arena, and the
// sequential leaves all share the same per-leaf footprint.
count_t ws_fused(index_t m, index_t k, index_t n, const DgefmmConfig& cfg,
                 int depth) {
  if (m == 0 || n == 0) return 0;
  if (m < 2 || k < 2 || n < 2 || cfg.cutoff.stop(m, k, n, depth)) return 0;
  const index_t m2 = (m & ~index_t{1}) / 2;
  const index_t k2 = (k & ~index_t{1}) / 2;
  const index_t n2 = (n & ~index_t{1}) / 2;
  int levels = 1;
  if (std::clamp(cfg.fused_levels, 1, 2) >= 2 && ((m2 | k2 | n2) & 1) == 0 &&
      !cfg.cutoff.stop(m2, k2, n2, depth + 1)) {
    levels = 2;
  }
  const int shift = levels - 1;
  return detail::fused_product_workspace(m2 >> shift, k2 >> shift,
                                         n2 >> shift, cfg, depth + levels);
}

}  // namespace

DgefmmConfig sizing_config(const SgefmmConfig& cfg) {
  DgefmmConfig d;
  d.cutoff = cfg.cutoff;
  d.scheme = cfg.scheme;
  d.odd = cfg.odd;
  d.fused_levels = cfg.fused_levels;
  // Deliberately off: the shared recursion counts shape-derived elements,
  // but the panel-cache slab depends on the element type's kernel and
  // blocking, so workspace_floats adds its own float-sized term instead of
  // inheriting a double-sized one here.
  d.panel_cache = false;
  return d;
}

count_t workspace_doubles_at(index_t m, index_t n, index_t k, double beta,
                             const DgefmmConfig& cfg, int depth) {
  return ws(m, k, n, beta == 0.0, cfg, depth);
}

count_t workspace_doubles(index_t m, index_t n, index_t k, double beta,
                          const DgefmmConfig& cfg) {
  if (cfg.use_tuned) {
    // The same resolution the driver applies, so the predicted peak is the
    // peak of the schedule that actually runs. The GEMM route draws no
    // arena workspace at all.
    DgefmmConfig eff = cfg;
    if (resolve_tuned<double>(m, k, n, beta, /*workers=*/1, eff) ==
        TunedPath::gemm) {
      return 0;
    }
    return workspace_doubles(m, n, k, beta, eff);
  }
  const bool beta_zero = (beta == 0.0);
  if (cfg.scheme == Scheme::fused) {
    // Fused always peels odd dimensions, so cfg.odd plays no role at the
    // fused levels (the classic recursion below honours it via ws()).
    // The packed-panel cache slab and the classic leaf recursion are
    // mutually exclusive (the slab exists only when every leaf is a packed
    // product), so the sum below is exactly one of its two terms.
    return ws_fused(m, k, n, cfg, 0) +
           detail::fused_cache_elements<double>(m, k, n, cfg, 0);
  }
  if (cfg.odd == OddStrategy::static_padding) {
    const int levels = detail::static_padding_depth(cfg.cutoff, m, k, n);
    const index_t mp = detail::pad_up(m, levels);
    const index_t kp = detail::pad_up(k, levels);
    const index_t np = detail::pad_up(n, levels);
    count_t copies = 0;
    if (mp != m || kp != k || np != n) {
      copies = static_cast<count_t>(mp) * kp + static_cast<count_t>(kp) * np +
               static_cast<count_t>(mp) * np;
    }
    return copies + ws(mp, kp, np, beta_zero, cfg, 0);
  }
  return ws(m, k, n, beta_zero, cfg, 0);
}

count_t workspace_floats(index_t m, index_t n, index_t k, float beta,
                         const SgefmmConfig& cfg) {
  if (cfg.use_tuned) {
    // Resolve against the *float* policy before dropping to the shared
    // double-counted recursion: each element type consults its own
    // crossovers (sizing_config does not forward use_tuned).
    SgefmmConfig eff = cfg;
    if (resolve_tuned<float>(m, k, n, beta, /*workers=*/1, eff) ==
        TunedPath::gemm) {
      return 0;
    }
    return workspace_floats(m, n, k, beta, eff);
  }
  count_t elems = workspace_doubles(m, n, k, static_cast<double>(beta),
                                    sizing_config(cfg));
  if (cfg.scheme == Scheme::fused) {
    // The float call's own cache slab, sized by the float kernel and
    // blocking (sizing_config dropped the double-sized term on purpose).
    elems += detail::fused_cache_elements<float>(m, k, n, cfg, 0);
  }
  return elems;
}

count_t parallel_workspace_doubles(index_t m, index_t n, index_t k,
                                   const DgefmmConfig& cfg, int par_depth,
                                   int lanes) {
  // Mirrors parallel/task_dag.cpp exactly: the even core splits into a
  // 2^par_depth grid (the planner only selects par_depth == 2 when the
  // half-dimensions are still even), every product node of the 7^par_depth
  // schedule owns one (mb x nb) temporary, and each scheduler lane owns one
  // leaf sub-arena sized for the deepest fused_product it can run.
  const int depth = std::clamp(par_depth, 1, 2);
  const index_t mb = (m & ~index_t{1}) >> depth;
  const index_t kb = (k & ~index_t{1}) >> depth;
  const index_t nb = (n & ~index_t{1}) >> depth;
  if (mb == 0 || kb == 0 || nb == 0) return 0;
  const count_t products = depth == 2 ? 49 : 7;
  const count_t lane_ws =
      detail::fused_product_workspace(mb, kb, nb, cfg, depth);
  return products * (static_cast<count_t>(mb) * nb) +
         static_cast<count_t>(std::max(lanes, 1)) * lane_ws;
}

count_t parallel_workspace_floats(index_t m, index_t n, index_t k,
                                  const SgefmmConfig& cfg, int par_depth,
                                  int lanes) {
  return parallel_workspace_doubles(m, n, k, sizing_config(cfg), par_depth,
                                    lanes);
}

double bound_strassen1_beta0(index_t m, index_t k, index_t n) {
  return (static_cast<double>(m) * static_cast<double>(std::max(k, n)) +
          static_cast<double>(k) * static_cast<double>(n)) /
         3.0;
}

double bound_strassen1_general(index_t m, index_t k, index_t n) {
  return (4.0 * static_cast<double>(m) * static_cast<double>(n) +
          static_cast<double>(m) * static_cast<double>(std::max(k, n)) +
          static_cast<double>(k) * static_cast<double>(n)) /
         3.0;
}

double bound_strassen2(index_t m, index_t k, index_t n) {
  return (static_cast<double>(m) * static_cast<double>(k) +
          static_cast<double>(k) * static_cast<double>(n) +
          static_cast<double>(m) * static_cast<double>(n)) /
         3.0;
}

}  // namespace strassen::core
