// Elementwise matrix kernels used by the Strassen schedules.
//
// These are the G(m,n)-cost passes of the operation-count model: each call
// makes exactly one pass over its operands. Destinations are always plain
// column-major (workspace temporaries or quadrants of C); sources may be
// transposed views so that op(A)/op(B) never require a physical transpose.
#pragma once

#include "support/matrix.hpp"

namespace strassen::core {

/// d = x + y.
void add(ConstView x, ConstView y, MutView d);

/// d = x - y.
void sub(ConstView x, ConstView y, MutView d);

/// d += x.
void add_inplace(MutView d, ConstView x);

/// d -= x.
void sub_inplace(MutView d, ConstView x);

/// d = x - d.
void rsub_inplace(MutView d, ConstView x);

/// d = x (data movement only; zero cost in the op-count model).
void copy_into(ConstView x, MutView d);

/// d = a*x + b*d (general accumulate used by the STRASSEN2 schedule to fold
/// beta*C into the result).
void axpby(double a, ConstView x, double b, MutView d);

/// d += a*x.
void axpy(double a, ConstView x, MutView d);

/// d = b*d (b == 0 assigns zero, overwriting NaNs per the BLAS convention).
void scale(double b, MutView d);

}  // namespace strassen::core
