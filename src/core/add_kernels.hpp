// Elementwise matrix kernels used by the Strassen schedules.
//
// These are the G(m,n)-cost passes of the operation-count model: each call
// makes exactly one pass over its operands. Destinations are always plain
// column-major (workspace temporaries or quadrants of C); sources may be
// transposed views so that op(A)/op(B) never require a physical transpose.
// Each routine is a double/float overload pair over one shared template, so
// both precisions run identical passes through the active kernel family's
// vector helpers.
#pragma once

#include "support/matrix.hpp"

namespace strassen::core {

/// d = x + y.
void add(ConstView x, ConstView y, MutView d);
void add(ConstViewF x, ConstViewF y, MutViewF d);

/// d = x - y.
void sub(ConstView x, ConstView y, MutView d);
void sub(ConstViewF x, ConstViewF y, MutViewF d);

/// d += x.
void add_inplace(MutView d, ConstView x);
void add_inplace(MutViewF d, ConstViewF x);

/// d -= x.
void sub_inplace(MutView d, ConstView x);
void sub_inplace(MutViewF d, ConstViewF x);

/// d = x - d.
void rsub_inplace(MutView d, ConstView x);
void rsub_inplace(MutViewF d, ConstViewF x);

/// d = x (data movement only; zero cost in the op-count model).
void copy_into(ConstView x, MutView d);
void copy_into(ConstViewF x, MutViewF d);

/// d = a*x + b*d (general accumulate used by the STRASSEN2 schedule to fold
/// beta*C into the result).
void axpby(double a, ConstView x, double b, MutView d);
void axpby(float a, ConstViewF x, float b, MutViewF d);

/// d += a*x.
void axpy(double a, ConstView x, MutView d);
void axpy(float a, ConstViewF x, MutViewF d);

/// d = b*d (b == 0 assigns zero, overwriting NaNs per the BLAS convention).
void scale(double b, MutView d);
void scale(float b, MutViewF d);

}  // namespace strassen::core
