#include "core/winograd_fused.hpp"

#include <algorithm>
#include <cassert>

#include "blas/gemm.hpp"
#include "blas/pack_operand.hpp"
#include "blas/packed_loop.hpp"
#include "core/add_kernels.hpp"
#include "core/peeling.hpp"
#include "core/workspace.hpp"
#include "support/faultinject.hpp"
#include "support/opcount.hpp"
#include "verify/proofs.hpp"

namespace strassen::core::detail {

namespace {

constexpr int kMaxTerms = blas::kPackMaxTerms;
constexpr int kMaxDests = blas::kPackMaxDests;

// The packed-GEMM skeleton must be able to hold any operand combination or
// destination set the verified fused tables produce -- including the fully
// composed two-level table.
static_assert(verify::max_fused_terms(verify::kFusedL1,
                                      verify::kFusedL1Products) *
                      verify::max_fused_terms(verify::kFusedL1,
                                              verify::kFusedL1Products) <=
                  kMaxTerms,
              "two fused levels exceed the pack skeleton's term capacity");
static_assert(verify::max_fused_terms(verify::kFusedL2.p,
                                      verify::kFusedL2Products) <= kMaxTerms,
              "composed L2 table exceeds the pack skeleton's term capacity");
static_assert(kMaxTerms <= verify::kMaxFusedTerms &&
                  kMaxDests <= verify::kMaxFusedTerms,
              "verify IR term capacity out of sync with the pack skeleton");

// A linear combination of up to kMaxTerms equally shaped operand views:
// one term at the top, doubling per fused level (Strassen sums at most two
// quadrants per operand per level).
template <class T>
struct Comb {
  BasicView<const T> v[kMaxTerms];
  T g[kMaxTerms];
  int n = 0;

  void add(BasicView<const T> view, T gamma) {
    assert(n < kMaxTerms);
    v[n] = view;
    g[n] = gamma;
    ++n;
  }
};

// Up to kMaxDests destination blocks, each with its own +/- alpha scale.
template <class T>
struct Dests {
  BasicView<T> v[kMaxDests];
  T g[kMaxDests];
  int n = 0;

  void add(BasicView<T> view, T gamma) {
    assert(n < kMaxDests);
    v[n] = view;
    g[n] = gamma;
    ++n;
  }
};

// The 7-product table lives in verify/schedule_ir.hpp (verify::kFusedL1,
// Strassen's original construction -- the variant whose products each read
// at most two quadrants per operand and write at most two quadrants of C,
// the property the 2-term/2-destination fusion needs). Its algebra, its
// zero-temporary claim, and the composed two-level table are all
// static_asserted in verify/proofs.hpp; emit() below expands the same
// table recursively, so the executed coefficients are the proved ones.
// Quadrants are indexed 0=11, 1=12, 2=21, 3=22.

template <class View>
View quadrant_of(const View& x, int q) {
  const index_t r2 = x.rows / 2, c2 = x.cols / 2;
  return x.block((q >> 1) * r2, (q & 1) * c2, r2, c2);
}

// State threaded through one fused top-level invocation. `touched` tracks
// which C blocks have already absorbed their beta*C term, so beta is
// applied exactly once per block no matter how many products land there.
template <class T>
struct FusedRun {
  CtxT<T>* ctx = nullptr;
  T beta = T(0);
  // Resolved once per fused subtree. Derived from the active micro-kernel's
  // register tile for this element type and the detected caches
  // (blas::blocking_for_t), so the fused leaves below automatically follow
  // a kernel switch; the leaves may also fan out over the pool
  // (blas::packed_gemm_threads), which is safe here because the driver
  // pre-warmed every worker's pack scratch before entering the no-fail
  // region.
  blas::GemmBlocking bk{};
  // Degraded mode (fallback failure policy, DESIGN.md section 7): workspace
  // reservation failed, so every leaf must take the single fused
  // packed-GEMM call, which draws nothing from the arena.
  bool force_packed = false;
  // Per-call packed-panel cache (null: packing always fresh). Set only by
  // fmm_fused when every leaf is a packed product and the leaf n extent
  // spans multiple GEMM column strips -- the shape where the loop nest
  // would re-pack the same A quadrant once per strip. Every image is
  // filled on the submitting thread before the leaf's packed call fans
  // out, so workers only ever read it -- no synchronization needed.
  blas::PanelCacheT<T>* cache = nullptr;
  T* touched[16] = {};
  int ntouched = 0;

  bool first_touch(T* p) {
    for (int i = 0; i < ntouched; ++i) {
      if (touched[i] == p) return false;
    }
    assert(ntouched < 16);
    touched[ntouched++] = p;
    return true;
  }
};

// d <- combination (one assignment pass plus one accumulate pass per extra
// term), used when a leaf continues with the classic recursion.
template <class T>
void materialize(const Comb<T>& x, BasicView<T> d) {
  axpby(x.g[0], x.v[0], T(0), d);
  for (int i = 1; i < x.n; ++i) axpy(x.g[i], x.v[i], d);
}

// One leaf product: a single fused packed-GEMM call when the cutoff says
// these dimensions are DGEMM-sized, otherwise materialize the operand
// combinations and continue with the classic schedules below the fusion.
template <class T>
void fused_leaf(FusedRun<T>& run, const Comb<T>& a, const Comb<T>& b,
                const Dests<T>& c, int depth) {
  CtxT<T>& ctx = *run.ctx;
  const index_t ml = a.v[0].rows, kl = a.v[0].cols, nl = b.v[0].cols;

  if (!run.force_packed && !ctx.cfg->cutoff.stop(ml, kl, nl, depth)) {
    ArenaScopeT scope(*ctx.arena);
    BasicView<T> ta = arena_matrix(*ctx.arena, ml, kl);
    materialize(a, ta);
    BasicView<T> tb = arena_matrix(*ctx.arena, kl, nl);
    materialize(b, tb);
    BasicView<T> p = arena_matrix(*ctx.arena, ml, nl);
    fmm<T>(T(1), ta, tb, T(0), p, ctx, depth);
    for (int i = 0; i < c.n; ++i) {
      if (run.first_touch(c.v[i].p)) {
        axpby(c.g[i], p, run.beta, c.v[i]);
      } else {
        axpy(c.g[i], p, c.v[i]);
      }
    }
    return;
  }

  blas::PackCombT<T> pa;
  for (int i = 0; i < a.n; ++i) pa.add(a.v[i], a.g[i]);
  blas::PackCombT<T> pb;
  for (int i = 0; i < b.n; ++i) pb.add(b.v[i], b.g[i]);
  blas::WriteDestT<T> dst[kMaxDests];
  for (int i = 0; i < c.n; ++i) {
    dst[i] = blas::write_dest(c.v[i], c.g[i],
                              run.first_touch(c.v[i].p) ? run.beta : T(1));
  }
  // A product whose A side is one pure quadrant (single term, gamma == 1)
  // can stream that quadrant's packed image from the per-call cache instead
  // of re-packing it for every nc column strip of this product.
  blas::PackedStreamsT<T> streams;
  if (run.cache != nullptr && a.n == 1 && a.g[0] == T(1)) {
    streams.a = run.cache->acquire('a', a.v[0].p, a.v[0].rs, a.v[0].cs,
                                   a.v[0].rows, a.v[0].cols);
    if (streams.a != nullptr) {
      run.cache->note_hits(blas::packed_a_blocks(run.bk, ml, nl, kl));
    } else {
      run.cache->note_misses(blas::packed_a_blocks(run.bk, ml, nl, kl));
    }
  }
  blas::packed_gemm_multi(run.bk, ml, nl, kl, pa, pb, dst, c.n, streams);

  if (opcount::enabled()) {
    opcount::record_gemm(ml, kl, nl, /*accumulate=*/true);
    const count_t comb_adds = static_cast<count_t>(a.n - 1) * ml * kl +
                              static_cast<count_t>(b.n - 1) * kl * nl +
                              static_cast<count_t>(c.n - 1) * ml * nl;
    if (comb_adds > 0) opcount::record_add(comb_adds);
  }
  if (ctx.stats != nullptr) {
    ++ctx.stats->base_gemms;
    ++ctx.stats->fused_products;
  }
}

// Expands `levels` fused Strassen levels: each level substitutes every term
// and destination with its quadrants per verify::kFusedL1 and recurses, so
// term and destination counts double per level (bounded by the skeleton's
// 4; at two levels this realizes verify::kFusedL2 product by product).
template <class T>
void emit(FusedRun<T>& run, int levels, const Comb<T>& a, const Comb<T>& b,
          const Dests<T>& c, int depth) {
  if (levels == 0) {
    fused_leaf(run, a, b, c, depth);
    return;
  }
  for (const verify::FProduct& spec : verify::kFusedL1) {
    Comb<T> sa;
    for (int e = 0; e < spec.na; ++e) {
      for (int t = 0; t < a.n; ++t) {
        sa.add(quadrant_of(a.v[t], spec.a[e].q),
               a.g[t] * static_cast<T>(spec.a[e].g));
      }
    }
    Comb<T> sb;
    for (int e = 0; e < spec.nb; ++e) {
      for (int t = 0; t < b.n; ++t) {
        sb.add(quadrant_of(b.v[t], spec.b[e].q),
               b.g[t] * static_cast<T>(spec.b[e].g));
      }
    }
    Dests<T> sc;
    for (int e = 0; e < spec.nc; ++e) {
      for (int t = 0; t < c.n; ++t) {
        sc.add(quadrant_of(c.v[t], spec.c[e].q),
               c.g[t] * static_cast<T>(spec.c[e].g));
      }
    }
    emit(run, levels - 1, sa, sb, sc, depth + 1);
  }
}

int clamp_fused_levels(int requested) {
  return std::clamp(requested, 1, 2);
}

// Collects the distinct A-side leaf blocks -- (block row, block col) on the
// 2^levels quadrant grid -- of fused products whose A combination is a
// single source with gamma == +1: the only operands the panel cache can
// stream (their packed image is a pure copy of one quadrant). Derived from
// the proved tables, not hard-coded: at one level these are the products of
// verify::kFusedL1 with a 1-term positive A side, at two levels the outer x
// inner compositions where both factors are 1-term (the composed gamma
// stays +1 because every 1-term A entry of the table is positive). Returns
// the key count (each key occurs in exactly one product -- Strassen's 7
// combinations are deliberately distinct -- so cross-product reuse does not
// exist; the cache's payoff is the per-strip re-pack inside one product).
int fused_gamma1_a_keys(int levels, int rc[][2]) {
  int n = 0;
  if (levels == 1) {
    for (const verify::FProduct& spec : verify::kFusedL1) {
      if (spec.na != 1 || spec.a[0].g != 1) continue;
      rc[n][0] = spec.a[0].q >> 1;
      rc[n][1] = spec.a[0].q & 1;
      ++n;
    }
    return n;
  }
  assert(levels == 2);
  for (const verify::FProduct& outer : verify::kFusedL1) {
    if (outer.na != 1) continue;
    for (const verify::FProduct& inner : verify::kFusedL1) {
      if (inner.na != 1 || outer.a[0].g * inner.a[0].g != 1) continue;
      const int row = (outer.a[0].q >> 1) * 2 + (inner.a[0].q >> 1);
      const int col = (outer.a[0].q & 1) * 2 + (inner.a[0].q & 1);
      bool seen = false;
      for (int i = 0; i < n; ++i) {
        if (rc[i][0] == row && rc[i][1] == col) seen = true;
      }
      if (!seen && n < 8) {
        rc[n][0] = row;
        rc[n][1] = col;
        ++n;
      }
    }
  }
  return n;
}

}  // namespace

template <class T>
count_t fused_cache_elements(index_t m, index_t k, index_t n,
                             const GefmmConfigT<T>& cfg, int depth) {
  if (!cfg.panel_cache || depth != 0) return 0;
  if (m == 0 || n == 0) return 0;
  // Mirror of fmm_fused's dispatch, so the predicted slab exists exactly
  // when fmm_fused carves one: the gemm_view routes allocate nothing, and
  // leaves that still recurse classically never enter the packed sweep.
  if (m < 2 || k < 2 || n < 2 || cfg.cutoff.stop(m, k, n, depth)) return 0;
  const index_t me = m & ~index_t{1};
  const index_t ke = k & ~index_t{1};
  const index_t ne = n & ~index_t{1};
  const index_t m2 = me / 2, k2 = ke / 2, n2 = ne / 2;
  int levels = 1;
  if (clamp_fused_levels(cfg.fused_levels) >= 2 &&
      ((m2 | k2 | n2) & 1) == 0 && !cfg.cutoff.stop(m2, k2, n2, depth + 1)) {
    levels = 2;
  }
  const index_t mB = me >> levels, kB = ke >> levels, nB = ne >> levels;
  if (!cfg.cutoff.stop(mB, kB, nB, depth + levels)) return 0;
  const blas::GemmBlocking bk =
      blas::blocking_for_t<T>(blas::active_machine());
  // The cache pays off only when one product's n extent spans several GEMM
  // column strips (the loop nest re-packs A once per strip); below that,
  // carve nothing so Table-1-scale shapes keep their exact paper bounds.
  if (nB <= bk.nc) return 0;
  int rc[8][2];
  const int nkeys = fused_gamma1_a_keys(levels, rc);
  const std::size_t per =
      blas::packed_a_total(bk, blas::active_kernel_t<T>().mr, mB, kB) +
      kBufferAlignment / sizeof(T);  // per-image alignment slack
  return static_cast<count_t>(nkeys) * static_cast<count_t>(per);
}

template count_t fused_cache_elements<double>(index_t, index_t, index_t,
                                              const DgefmmConfig&, int);
template count_t fused_cache_elements<float>(index_t, index_t, index_t,
                                             const SgefmmConfig&, int);

template <class T>
void fmm_fused(T alpha, BasicView<const T> a, BasicView<const T> b, T beta,
               BasicView<T> c, CtxT<T>& ctx, int depth) {
  const index_t m = c.rows, n = c.cols, k = a.cols;
  assert(a.rows == m && b.rows == k && b.cols == n);
  if (m == 0 || n == 0) return;

  const bool degenerate = (m < 2 || k < 2 || n < 2);
  if (degenerate || alpha == T(0) || ctx.cfg->cutoff.stop(m, k, n, depth)) {
    blas::gemm_view(alpha, a, b, beta, c);
    if (ctx.stats != nullptr) ++ctx.stats->base_gemms;
    return;
  }

  // Odd dimensions are always dynamically peeled at fused levels: padding
  // would reintroduce exactly the copy passes fusion removes.
  const bool odd = ((m | k | n) & 1) != 0;
  const index_t me = m & ~index_t{1};
  const index_t ke = k & ~index_t{1};
  const index_t ne = n & ~index_t{1};
  const index_t m2 = me / 2, k2 = ke / 2, n2 = ne / 2;

  int levels = 1;
  if (clamp_fused_levels(ctx.cfg->fused_levels) >= 2 &&
      ((m2 | k2 | n2) & 1) == 0 &&
      !ctx.cfg->cutoff.stop(m2, k2, n2, depth + 1)) {
    levels = 2;
  }

  if (ctx.stats != nullptr) {
    // One fused level is one Strassen node; two fused levels stand in for a
    // node plus its seven children.
    ctx.stats->strassen_levels += (levels == 2) ? 8 : 1;
    ctx.stats->fused_depth = std::max(ctx.stats->fused_depth, levels);
    ctx.stats->max_depth = std::max(ctx.stats->max_depth, depth + levels);
  }

  FusedRun<T> run;
  run.ctx = &ctx;
  run.beta = beta;
  run.bk = blas::blocking_for_t<T>(blas::active_machine());

  // Packed-panel cache: when every leaf is a packed product whose n extent
  // spans multiple GEMM column strips, carve the slab the workspace
  // predictor already accounted for (same fused_cache_elements call, so
  // prediction == peak stays exact) and register the pure single-quadrant
  // A operands the sweep will stream. The scope releases the slab with the
  // call; peak() keeps the high-water mark for the stats.
  ArenaScopeT cache_scope(*ctx.arena);
  const count_t cache_need = fused_cache_elements<T>(m, k, n, *ctx.cfg, depth);
  T* slab = cache_need > 0
                ? ctx.arena->alloc(static_cast<std::size_t>(cache_need))
                : nullptr;
  blas::PanelCacheT<T> cache(run.bk, slab,
                             slab != nullptr
                                 ? static_cast<std::size_t>(cache_need)
                                 : 0);
  if (slab != nullptr) {
    const BasicView<const T> a_even = a.block(0, 0, me, ke);
    const index_t mB = me >> levels, kB = ke >> levels;
    int rc[8][2];
    const int nkeys = fused_gamma1_a_keys(levels, rc);
    for (int i = 0; i < nkeys; ++i) {
      const BasicView<const T> q =
          a_even.block(rc[i][0] * mB, rc[i][1] * kB, mB, kB);
      (void)cache.register_entry('a', q.p, q.rs, q.cs, mB, kB);
    }
    run.cache = &cache;
  }

  Comb<T> ca;
  ca.add(a.block(0, 0, me, ke), T(1));
  Comb<T> cb;
  cb.add(b.block(0, 0, ke, ne), T(1));
  Dests<T> dc;
  dc.add(c.block(0, 0, me, ne), alpha);
  emit(run, levels, ca, cb, dc, depth);

  if (ctx.stats != nullptr && run.cache != nullptr) {
    ctx.stats->pack_hits += cache.hits();
    ctx.stats->pack_misses += cache.misses();
  }

  if (odd) {
    const int fixups = peel_fixups(alpha, a, b, beta, c, me, ke, ne);
    if (ctx.stats != nullptr) ctx.stats->peel_fixups += fixups;
  }
  if (ctx.stats != nullptr) {
    ctx.stats->peak_workspace =
        std::max(ctx.stats->peak_workspace, ctx.arena->peak());
  }
}

template <class T>
void fused_product(const FusedOperandT<T>& a, const FusedOperandT<T>& b,
                   BasicView<T> d, T g, T beta, CtxT<T>& ctx, int depth) {
  assert(a.n >= 1 && b.n >= 1);
  const index_t ml = a.v[0].rows, kl = a.v[0].cols, nl = b.v[0].cols;
  const count_t need = fused_product_workspace(ml, kl, nl, *ctx.cfg, depth);
  bool force_packed = false;
  if (ctx.arena->in_use() == 0 &&
      ctx.arena->capacity() < static_cast<std::size_t>(need)) {
    try {
      ctx.arena->reserve(static_cast<std::size_t>(need));
    } catch (const std::exception&) {
      if (ctx.cfg->on_failure == FailurePolicy::strict) throw;
      // Graceful degradation: the single fused packed-GEMM call computes
      // the same product through the pack buffers alone, so the leaf below
      // skips the arena-backed recursion instead of failing.
      force_packed = true;
      if (ctx.stats != nullptr) ++ctx.stats->fallbacks;
    }
  }

  // Acquisition is behind us; the computation below runs as a no-fail
  // region, mirroring the serial driver (injected faults suspended, real
  // arena overflow still reported as the sizing bug it would be).
  faultinject::ScopedSuspend nofail;

  FusedRun<T> run;
  run.ctx = &ctx;
  run.beta = beta;
  run.bk = blas::blocking_for_t<T>(blas::active_machine());
  run.force_packed = force_packed;

  Comb<T> ca;
  for (int i = 0; i < a.n; ++i) ca.add(a.v[i], a.g[i]);
  Comb<T> cb;
  for (int i = 0; i < b.n; ++i) cb.add(b.v[i], b.g[i]);
  Dests<T> dc;
  dc.add(d, g);
  fused_leaf(run, ca, cb, dc, depth);
}

count_t fused_product_workspace(index_t m, index_t k, index_t n,
                                const DgefmmConfig& cfg, int depth) {
  if (cfg.cutoff.stop(m, k, n, depth)) return 0;
  return static_cast<count_t>(m) * k + static_cast<count_t>(k) * n +
         static_cast<count_t>(m) * n +
         workspace_doubles_at(m, n, k, 0.0, cfg, depth);
}

count_t fused_product_workspace(index_t m, index_t k, index_t n,
                                const SgefmmConfig& cfg, int depth) {
  // Workspace is counted in elements, never bytes, so the float schedule's
  // peak equals the double schedule's under the same sizing fields.
  return fused_product_workspace(m, k, n, sizing_config(cfg), depth);
}

template void fmm_fused<double>(double, ConstView, ConstView, double, MutView,
                                CtxT<double>&, int);
template void fmm_fused<float>(float, ConstViewF, ConstViewF, float, MutViewF,
                               CtxT<float>&, int);
template void fused_product<double>(const FusedOperandT<double>&,
                                    const FusedOperandT<double>&, MutView,
                                    double, double, CtxT<double>&, int);
template void fused_product<float>(const FusedOperandT<float>&,
                                   const FusedOperandT<float>&, MutViewF,
                                   float, float, CtxT<float>&, int);

}  // namespace strassen::core::detail
