#include "core/cabi.hpp"

#include <cctype>

#include "core/dgefmm.hpp"

namespace {

using namespace strassen;

// Parses a BLAS trans character; returns false on an invalid value.
bool parse_trans(char ch, Trans& out) {
  switch (std::toupper(static_cast<unsigned char>(ch))) {
    case 'N':
      out = Trans::no;
      return true;
    case 'T':
      out = Trans::transpose;
      return true;
    case 'C':
      out = Trans::conj_transpose;
      return true;
    default:
      return false;
  }
}

// Process-wide workspace, as the original library kept internally. The
// bindings are not thread-safe (neither was the 1996 library); concurrent
// callers should use the C++ API with per-thread arenas.
Arena& shared_arena() {
  static Arena arena;
  return arena;
}

int run(Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
        const double* a, index_t lda, const double* b, index_t ldb,
        double beta, double* c, index_t ldc,
        const core::CutoffCriterion& cutoff) {
  core::DgefmmConfig cfg;
  cfg.cutoff = cutoff;
  cfg.workspace = &shared_arena();
  return core::dgefmm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                      cfg);
}

}  // namespace

extern "C" {

int strassen_dgefmm(char transa, char transb, std::int64_t m, std::int64_t n,
                    std::int64_t k, double alpha, const double* a,
                    std::int64_t lda, const double* b, std::int64_t ldb,
                    double beta, double* c, std::int64_t ldc) {
  Trans ta, tb;
  if (!parse_trans(transa, ta)) return 1;
  if (!parse_trans(transb, tb)) return 2;
  return run(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
             core::CutoffCriterion::paper_default(blas::active_machine()));
}

int strassen_dgefmm_tuned(char transa, char transb, std::int64_t m,
                          std::int64_t n, std::int64_t k, double alpha,
                          const double* a, std::int64_t lda, const double* b,
                          std::int64_t ldb, double beta, double* c,
                          std::int64_t ldc, double tau, double tau_m,
                          double tau_k, double tau_n) {
  Trans ta, tb;
  if (!parse_trans(transa, ta)) return 1;
  if (!parse_trans(transb, tb)) return 2;
  return run(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
             core::CutoffCriterion::hybrid(tau, tau_m, tau_k, tau_n));
}

void dgefmm_(const char* transa, const char* transb, const std::int32_t* m,
             const std::int32_t* n, const std::int32_t* k,
             const double* alpha, const double* a, const std::int32_t* lda,
             const double* b, const std::int32_t* ldb, const double* beta,
             double* c, const std::int32_t* ldc, std::int32_t* info) {
  *info = static_cast<std::int32_t>(
      strassen_dgefmm(*transa, *transb, *m, *n, *k, *alpha, a, *lda, b, *ldb,
                      *beta, c, *ldc));
}

}  // extern "C"
