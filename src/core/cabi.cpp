#include "core/cabi.hpp"

#include <cctype>
#include <exception>
#include <new>
#include <type_traits>

#include "blas/gemm.hpp"
#include "blas/packed_loop.hpp"
#include "core/dgefmm.hpp"
#include "core/sgefmm.hpp"
#include "support/errors.hpp"

namespace {

using namespace strassen;

// Parses a BLAS trans character; returns false on an invalid value.
bool parse_trans(char ch, Trans& out) {
  switch (std::toupper(static_cast<unsigned char>(ch))) {
    case 'N':
      out = Trans::no;
      return true;
    case 'T':
      out = Trans::transpose;
      return true;
    case 'C':
      out = Trans::conj_transpose;
      return true;
    default:
      return false;
  }
}

// Per-thread binding state, one instance per element type. The 1996
// library kept one process-wide workspace and was not thread-safe; a
// thread_local arena gives the same reuse-across-calls behaviour while
// letting threaded programs call the bindings concurrently without sharing
// (or racing on) any state. The double and float bindings keep separate
// arenas -- the storage is typed -- and separate policy/limit knobs, so a
// program mixing precisions configures each independently.
template <class T>
struct BindingState {
  ArenaT<T> arena;
  core::FailurePolicy policy = core::FailurePolicy::fallback;
  std::int64_t workspace_limit = -1;  // elements; negative = unlimited
};

template <class T>
BindingState<T>& binding_state() {
  thread_local BindingState<T> state;
  return state;
}

// Maps an in-flight exception to its documented negative info code. C has
// not been written when any of these reach the boundary: under the strict
// policy the driver throws before its first store to C, and bad_alloc from
// the fallback's own machinery would fire in acquisition too.
int info_from_exception() {
  try {
    throw;
  } catch (const WorkspaceError&) {
    return STRASSEN_INFO_WORKSPACE;
  } catch (const std::bad_alloc&) {
    return STRASSEN_INFO_ALLOC;
  } catch (const Error&) {
    return STRASSEN_INFO_INTERNAL;
  } catch (...) {
    return STRASSEN_INFO_UNKNOWN;
  }
}

// The precision-generic binding body behind both C entry families.
template <class T>
int run(Trans ta, Trans tb, index_t m, index_t n, index_t k, T alpha,
        const T* a, index_t lda, const T* b, index_t ldb, T beta, T* c,
        index_t ldc, const core::CutoffCriterion& cutoff) noexcept {
  const auto gefmm = [](Trans fa, Trans fb, index_t fm, index_t fn,
                        index_t fk, T al, const T* fa_p, index_t flda,
                        const T* fb_p, index_t fldb, T be, T* fc_p,
                        index_t fldc, const core::GefmmConfigT<T>& cfg) {
    if constexpr (std::is_same_v<T, float>) {
      return core::sgefmm(fa, fb, fm, fn, fk, al, fa_p, flda, fb_p, fldb, be,
                          fc_p, fldc, cfg);
    } else {
      return core::dgefmm(fa, fb, fm, fn, fk, al, fa_p, flda, fb_p, fldb, be,
                          fc_p, fldc, cfg);
    }
  };
  try {
    BindingState<T>& state = binding_state<T>();
    core::GefmmConfigT<T> cfg;
    cfg.cutoff = cutoff;
    cfg.workspace = &state.arena;
    cfg.on_failure = state.policy;
    if (state.workspace_limit >= 0) {
      // Honour the configured cap before the driver would (re)grow the
      // arena.
      count_t need;
      if constexpr (std::is_same_v<T, float>) {
        need = core::sgefmm_workspace_floats(m, n, k, beta, cfg);
      } else {
        need = core::dgefmm_workspace_doubles(m, n, k, beta, cfg);
      }
      if (need > static_cast<count_t>(state.workspace_limit)) {
        if (state.policy == core::FailurePolicy::strict) {
          return STRASSEN_INFO_WORKSPACE;
        }
        // Fallback: run the same entry point with recursion disabled, which
        // keeps the argument checking but needs zero arena workspace.
        core::GefmmConfigT<T> plain;
        plain.cutoff = core::CutoffCriterion::never_recurse();
        return gefmm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                     plain);
      }
    }
    return gefmm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, cfg);
  } catch (...) {
    return info_from_exception();
  }
}

void set_policy(char policy, core::FailurePolicy& out) {
  switch (std::toupper(static_cast<unsigned char>(policy))) {
    case 'S':
      out = core::FailurePolicy::strict;
      break;
    case 'F':
      out = core::FailurePolicy::fallback;
      break;
    default:
      break;
  }
}

}  // namespace

extern "C" {

int strassen_dgefmm(char transa, char transb, std::int64_t m, std::int64_t n,
                    std::int64_t k, double alpha, const double* a,
                    std::int64_t lda, const double* b, std::int64_t ldb,
                    double beta, double* c, std::int64_t ldc) {
  Trans ta, tb;
  if (!parse_trans(transa, ta)) return 1;
  if (!parse_trans(transb, tb)) return 2;
  return run<double>(
      ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
      core::CutoffCriterion::paper_default(blas::active_machine()));
}

int strassen_dgefmm_tuned(char transa, char transb, std::int64_t m,
                          std::int64_t n, std::int64_t k, double alpha,
                          const double* a, std::int64_t lda, const double* b,
                          std::int64_t ldb, double beta, double* c,
                          std::int64_t ldc, double tau, double tau_m,
                          double tau_k, double tau_n) {
  Trans ta, tb;
  if (!parse_trans(transa, ta)) return 1;
  if (!parse_trans(transb, tb)) return 2;
  return run<double>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                     core::CutoffCriterion::hybrid(tau, tau_m, tau_k, tau_n));
}

void dgefmm_(const char* transa, const char* transb, const std::int32_t* m,
             const std::int32_t* n, const std::int32_t* k,
             const double* alpha, const double* a, const std::int32_t* lda,
             const double* b, const std::int32_t* ldb, const double* beta,
             double* c, const std::int32_t* ldc, std::int32_t* info) {
  *info = static_cast<std::int32_t>(
      strassen_dgefmm(*transa, *transb, *m, *n, *k, *alpha, a, *lda, b, *ldb,
                      *beta, c, *ldc));
}

void strassen_dgefmm_set_failure_policy(char policy) {
  set_policy(policy, binding_state<double>().policy);
}

void strassen_dgefmm_set_workspace_limit(std::int64_t limit_doubles) {
  binding_state<double>().workspace_limit = limit_doubles;
}

void strassen_dgefmm_release_workspace(void) {
  Arena& arena = binding_state<double>().arena;
  arena.reset();
  arena = Arena();
  // The arena is only half the thread's retained workspace: the packed
  // GEMMs also warmed per-thread pack scratch, which would otherwise
  // survive as retained-memory growth on a long-lived serving thread.
  blas::release_pack_capacity<double>();
}

int strassen_sgefmm(char transa, char transb, std::int64_t m, std::int64_t n,
                    std::int64_t k, float alpha, const float* a,
                    std::int64_t lda, const float* b, std::int64_t ldb,
                    float beta, float* c, std::int64_t ldc) {
  Trans ta, tb;
  if (!parse_trans(transa, ta)) return 1;
  if (!parse_trans(transb, tb)) return 2;
  return run<float>(
      ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
      core::CutoffCriterion::paper_default(blas::active_machine()));
}

int strassen_sgefmm_tuned(char transa, char transb, std::int64_t m,
                          std::int64_t n, std::int64_t k, float alpha,
                          const float* a, std::int64_t lda, const float* b,
                          std::int64_t ldb, float beta, float* c,
                          std::int64_t ldc, double tau, double tau_m,
                          double tau_k, double tau_n) {
  Trans ta, tb;
  if (!parse_trans(transa, ta)) return 1;
  if (!parse_trans(transb, tb)) return 2;
  return run<float>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                    core::CutoffCriterion::hybrid(tau, tau_m, tau_k, tau_n));
}

void sgefmm_(const char* transa, const char* transb, const std::int32_t* m,
             const std::int32_t* n, const std::int32_t* k, const float* alpha,
             const float* a, const std::int32_t* lda, const float* b,
             const std::int32_t* ldb, const float* beta, float* c,
             const std::int32_t* ldc, std::int32_t* info) {
  *info = static_cast<std::int32_t>(
      strassen_sgefmm(*transa, *transb, *m, *n, *k, *alpha, a, *lda, b, *ldb,
                      *beta, c, *ldc));
}

void strassen_sgefmm_set_failure_policy(char policy) {
  set_policy(policy, binding_state<float>().policy);
}

void strassen_sgefmm_set_workspace_limit(std::int64_t limit_floats) {
  binding_state<float>().workspace_limit = limit_floats;
}

void strassen_sgefmm_release_workspace(void) {
  ArenaF& arena = binding_state<float>().arena;
  arena.reset();
  arena = ArenaF();
  blas::release_pack_capacity<float>();
}

}  // extern "C"
