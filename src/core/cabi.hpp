// C and Fortran-77 compatible entry points.
//
// The original DGEFMM was distributed as a library callable from C and
// Fortran in place of the BLAS DGEMM (the eigensolver experiment renames
// the call site and nothing else). This header provides the equivalent
// bindings for this reimplementation:
//
//  * strassen_dgefmm(...): plain C calling convention, value arguments,
//    returns the BLAS-style info code;
//  * dgefmm_(...): Fortran-77 convention (all arguments by pointer,
//    character dummies as char*, 32-bit INTEGERs), with XERBLA-style
//    behaviour expressed through the info return.
//
// Both use the library defaults (paper cutoff parameters on the active
// machine profile, dynamic peeling, automatic schedule) and a reusable
// thread_local workspace arena, so concurrent callers never share state.
//
// Failure contract (DESIGN.md section 7): no exception ever crosses these
// extern "C" boundaries. By default the bindings run with the `fallback`
// failure policy -- when workspace cannot be acquired they degrade to the
// workspace-free DGEMM path and still return 0 with a correct product,
// which is what a drop-in DGEMM replacement must do. Under the `strict`
// policy (strassen_dgefmm_set_failure_policy('S')), and for failures even
// the fallback cannot absorb, the info return is negative:
//
//   info = 0                        success
//   info > 0                        1-based index of the first bad argument
//                                   (XERBLA convention: 1 transa, 2 transb,
//                                   3 m, 4 n, 5 k, 8 lda, 10 ldb, 13 ldc)
//   info = STRASSEN_INFO_WORKSPACE  workspace arena could not be reserved
//                                   or is over its configured limit
//   info = STRASSEN_INFO_ALLOC     memory allocation failed (bad_alloc)
//   info = STRASSEN_INFO_INTERNAL  another library error (see errors.hpp)
//   info = STRASSEN_INFO_UNKNOWN   unrecognised exception type
//
// The async serving entry points (serve/serve_cabi.hpp) extend the table
// with their terminal outcomes, reported by strassen_dgefmm_wait:
//
//   info = STRASSEN_INFO_REJECTED   refused at admission (queue full under
//                                   the reject policy, or the request's
//                                   exact workspace exceeds the budget)
//   info = STRASSEN_INFO_EXPIRED    deadline passed while still queued
//   info = STRASSEN_INFO_CANCELED   canceled before the first write to C
//   info = STRASSEN_INFO_BAD_HANDLE handle is unknown or already waited
//
// C is written if and only if info == 0 (argument errors and negative
// codes both leave beta*C semantics untouched).
#pragma once

#include <cstdint>

extern "C" {

/// Negative info codes for runtime failures (argument errors stay positive
/// per the XERBLA convention).
enum {
  STRASSEN_INFO_WORKSPACE = -1,
  STRASSEN_INFO_ALLOC = -2,
  STRASSEN_INFO_INTERNAL = -3,
  STRASSEN_INFO_UNKNOWN = -4,
  STRASSEN_INFO_REJECTED = -5,
  STRASSEN_INFO_EXPIRED = -6,
  STRASSEN_INFO_CANCELED = -7,
  STRASSEN_INFO_BAD_HANDLE = -8,
};

/// C binding. trans arguments are 'N'/'T'/'C' (case-insensitive).
/// Returns 0 on success, a positive bad-argument index, or a negative
/// STRASSEN_INFO_* failure code. Never throws.
[[nodiscard]] int strassen_dgefmm(char transa, char transb, std::int64_t m,
                                  std::int64_t n, std::int64_t k,
                                  double alpha, const double* a,
                                  std::int64_t lda, const double* b,
                                  std::int64_t ldb, double beta, double* c,
                                  std::int64_t ldc);

/// Same, with explicit hybrid-criterion parameters (eq. 15).
[[nodiscard]] int strassen_dgefmm_tuned(char transa, char transb,
                                        std::int64_t m, std::int64_t n,
                                        std::int64_t k, double alpha,
                                        const double* a, std::int64_t lda,
                                        const double* b, std::int64_t ldb,
                                        double beta, double* c,
                                        std::int64_t ldc, double tau,
                                        double tau_m, double tau_k,
                                        double tau_n);

/// Fortran-77 binding: CALL DGEFMM(TRANSA, TRANSB, M, N, K, ALPHA, A, LDA,
/// B, LDB, BETA, C, LDC, INFO). INTEGER arguments are 32-bit, everything
/// passes by reference, INFO receives the argument-check result or a
/// negative STRASSEN_INFO_* failure code. Never unwinds into Fortran.
void dgefmm_(const char* transa, const char* transb, const std::int32_t* m,
             const std::int32_t* n, const std::int32_t* k,
             const double* alpha, const double* a, const std::int32_t* lda,
             const double* b, const std::int32_t* ldb, const double* beta,
             double* c, const std::int32_t* ldc, std::int32_t* info);

/// Sets the calling thread's failure policy for the bindings above:
/// 'F'/'f' = fallback (default; degrade to plain DGEMM and succeed),
/// 'S'/'s' = strict (report negative info with C untouched).
/// Other characters are ignored.
void strassen_dgefmm_set_failure_policy(char policy);

/// Caps the calling thread's binding workspace at `limit_doubles` doubles;
/// a call whose predicted workspace exceeds the limit is treated as a
/// reservation failure (fallback degrades, strict reports
/// STRASSEN_INFO_WORKSPACE). Negative = unlimited (default).
void strassen_dgefmm_set_workspace_limit(std::int64_t limit_doubles);

/// Releases the calling thread's cached binding workspace: the arena *and*
/// the thread's packed-GEMM scratch (blas::release_pack_capacity), so a
/// long-lived thread that stops issuing double-precision GEMMs retains no
/// workspace memory at all. The next call simply re-acquires both.
void strassen_dgefmm_release_workspace(void);

/// Single-precision C binding: drop-in SGEMM replacement with the same
/// info-code contract as strassen_dgefmm. Uses its own thread_local float
/// workspace arena (double and float bindings never share storage) and its
/// own per-thread failure policy and workspace limit. Never throws.
[[nodiscard]] int strassen_sgefmm(char transa, char transb, std::int64_t m,
                                  std::int64_t n, std::int64_t k, float alpha,
                                  const float* a, std::int64_t lda,
                                  const float* b, std::int64_t ldb, float beta,
                                  float* c, std::int64_t ldc);

/// Same, with explicit hybrid-criterion parameters (eq. 15).
[[nodiscard]] int strassen_sgefmm_tuned(char transa, char transb,
                                        std::int64_t m, std::int64_t n,
                                        std::int64_t k, float alpha,
                                        const float* a, std::int64_t lda,
                                        const float* b, std::int64_t ldb,
                                        float beta, float* c, std::int64_t ldc,
                                        double tau, double tau_m, double tau_k,
                                        double tau_n);

/// Fortran-77 binding: CALL SGEFMM(TRANSA, TRANSB, M, N, K, ALPHA, A, LDA,
/// B, LDB, BETA, C, LDC, INFO) with REAL scalars/arrays. Same conventions
/// as dgefmm_.
void sgefmm_(const char* transa, const char* transb, const std::int32_t* m,
             const std::int32_t* n, const std::int32_t* k, const float* alpha,
             const float* a, const std::int32_t* lda, const float* b,
             const std::int32_t* ldb, const float* beta, float* c,
             const std::int32_t* ldc, std::int32_t* info);

/// Float twins of the per-thread binding controls. The limit is counted in
/// floats (elements, matching sgefmm_workspace_floats), not bytes. The
/// release also frees the thread's float packed-GEMM scratch, like its
/// double twin.
void strassen_sgefmm_set_failure_policy(char policy);
void strassen_sgefmm_set_workspace_limit(std::int64_t limit_floats);
void strassen_sgefmm_release_workspace(void);

}  // extern "C"
