// C and Fortran-77 compatible entry points.
//
// The original DGEFMM was distributed as a library callable from C and
// Fortran in place of the BLAS DGEMM (the eigensolver experiment renames
// the call site and nothing else). This header provides the equivalent
// bindings for this reimplementation:
//
//  * strassen_dgefmm(...): plain C calling convention, value arguments,
//    returns the BLAS-style info code;
//  * dgefmm_(...): Fortran-77 convention (all arguments by pointer,
//    character dummies as char*, 32-bit INTEGERs), with XERBLA-style
//    behaviour expressed through the info return.
//
// Both use the library defaults (paper cutoff parameters on the active
// machine profile, dynamic peeling, automatic schedule) and a process-wide
// reusable workspace, mirroring how the original library was used.
#pragma once

#include <cstdint>

extern "C" {

/// C binding. trans arguments are 'N'/'T'/'C' (case-insensitive).
/// Returns 0 on success or the 1-based index of the first bad argument.
int strassen_dgefmm(char transa, char transb, std::int64_t m, std::int64_t n,
                    std::int64_t k, double alpha, const double* a,
                    std::int64_t lda, const double* b, std::int64_t ldb,
                    double beta, double* c, std::int64_t ldc);

/// Same, with explicit hybrid-criterion parameters (eq. 15).
int strassen_dgefmm_tuned(char transa, char transb, std::int64_t m,
                          std::int64_t n, std::int64_t k, double alpha,
                          const double* a, std::int64_t lda, const double* b,
                          std::int64_t ldb, double beta, double* c,
                          std::int64_t ldc, double tau, double tau_m,
                          double tau_k, double tau_n);

/// Fortran-77 binding: CALL DGEFMM(TRANSA, TRANSB, M, N, K, ALPHA, A, LDA,
/// B, LDB, BETA, C, LDC, INFO). INTEGER arguments are 32-bit, everything
/// passes by reference, INFO receives the argument-check result.
void dgefmm_(const char* transa, const char* transb, const std::int32_t* m,
             const std::int32_t* n, const std::int32_t* k,
             const double* alpha, const double* a, const std::int32_t* lda,
             const double* b, const std::int32_t* ldb, const double* beta,
             double* c, const std::int32_t* ldc, std::int32_t* info);

}  // extern "C"
