// Recursion driver and the interpreter for the Winograd-variant
// computation schedules (Section 3.2, Figure 1).
//
// The schedules themselves are not code here: they are constexpr
// coefficient tables in verify/schedule_ir.hpp, proved correct and
// storage-tight at compile time by verify/proofs.hpp. This module owns the
// recursion driver (cutoff, odd dimensions, statistics) and the IR
// interpreter that executes a verified table at each level:
//
//  * STRASSEN1, beta == 0 (verify::kStrassen1Beta0): the two-temporary
//    schedule (X of size m/2 x max(k,n)/2 and Y of size k/2 x n/2) in
//    which the seven products land directly in the quadrants of C. Total
//    extra storage across the recursion: (m*max(k,n) + kn)/3.
//
//  * STRASSEN1, general beta (verify::kStrassen1General): adds four
//    product temporaries per level (bounded by (4mn + m*max(k,n) + kn)/3
//    overall). Kept mainly for the Table 1 comparison; DGEFMM itself
//    prefers STRASSEN2 when beta != 0.
//
//  * STRASSEN2 (verify::kStrassen2, Figure 1): three temporaries R1
//    (mk/4), R2 (kn/4), R3 (mn/4) -- the minimum possible -- using
//    recursive multiply-accumulate (C <- alpha*A*B + beta*C) so that C's
//    own storage absorbs the U-accumulations. Total extra storage
//    (mk + kn + mn)/3.
//
// The driver is shared with the original-variant schedule in
// strassen_original.cpp, which interprets verify::kOriginalBeta0.
#pragma once

#include "core/types.hpp"
#include "support/arena.hpp"
#include "support/matrix.hpp"

namespace strassen::verify {
struct Schedule;
}

namespace strassen::core::detail {

/// Recursion-wide state threaded through every level.
struct Ctx {
  const DgefmmConfig* cfg = nullptr;
  Arena* arena = nullptr;
  DgefmmStats* stats = nullptr;  ///< may be null
};

/// C <- alpha * A * B + beta * C, recursively. A, B may be transposed
/// views; C must be column-major. This is the single entry point used by
/// the public dgefmm driver, the schedules (for their seven sub-products),
/// and the padding fall-backs.
void fmm(double alpha, ConstView a, ConstView b, double beta, MutView c,
         Ctx& ctx, int depth);

/// Interprets one verified schedule table (verify/schedule_ir.hpp) at one
/// recursion level of the even-dimensioned core: allocates the table's
/// declared temporaries from the arena in declaration order, then executes
/// its linear-combination steps with the add_kernels and its product steps
/// as recursive fmm calls. The table's algebra and temporary lifetimes are
/// static_asserted in verify/proofs.hpp, and this routine is the only
/// executor, so the proof covers exactly what runs.
void run_ir_schedule(const verify::Schedule& s, double alpha, ConstView a,
                     ConstView b, double beta, MutView c, Ctx& ctx,
                     int depth);

/// Views an arena allocation as an m x n column-major matrix.
MutView arena_matrix(Arena& arena, index_t m, index_t n);

}  // namespace strassen::core::detail
