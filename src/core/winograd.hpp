// Recursion driver and the interpreter for the Winograd-variant
// computation schedules (Section 3.2, Figure 1).
//
// The schedules themselves are not code here: they are constexpr
// coefficient tables in verify/schedule_ir.hpp, proved correct and
// storage-tight at compile time by verify/proofs.hpp. This module owns the
// recursion driver (cutoff, odd dimensions, statistics) and the IR
// interpreter that executes a verified table at each level:
//
//  * STRASSEN1, beta == 0 (verify::kStrassen1Beta0): the two-temporary
//    schedule (X of size m/2 x max(k,n)/2 and Y of size k/2 x n/2) in
//    which the seven products land directly in the quadrants of C. Total
//    extra storage across the recursion: (m*max(k,n) + kn)/3.
//
//  * STRASSEN1, general beta (verify::kStrassen1General): adds four
//    product temporaries per level (bounded by (4mn + m*max(k,n) + kn)/3
//    overall). Kept mainly for the Table 1 comparison; DGEFMM itself
//    prefers STRASSEN2 when beta != 0.
//
//  * STRASSEN2 (verify::kStrassen2, Figure 1): three temporaries R1
//    (mk/4), R2 (kn/4), R3 (mn/4) -- the minimum possible -- using
//    recursive multiply-accumulate (C <- alpha*A*B + beta*C) so that C's
//    own storage absorbs the U-accumulations. Total extra storage
//    (mk + kn + mn)/3.
//
// The driver is shared with the original-variant schedule in
// strassen_original.cpp, which interprets verify::kOriginalBeta0.
//
// Everything here is templated on the element type T: dgefmm runs the
// double instantiation, sgefmm the float one. The IR tables stay
// double-valued (coefficients are small integers times beta); the
// interpreter narrows them to T at the point of use.
#pragma once

#include "core/types.hpp"
#include "support/arena.hpp"
#include "support/matrix.hpp"

namespace strassen::verify {
struct Schedule;
}

namespace strassen::core::detail {

/// Recursion-wide state threaded through every level.
template <class T>
struct CtxT {
  const GefmmConfigT<T>* cfg = nullptr;
  ArenaT<T>* arena = nullptr;
  DgefmmStats* stats = nullptr;  ///< may be null
};

using Ctx = CtxT<double>;
using CtxF = CtxT<float>;

/// C <- alpha * A * B + beta * C, recursively. A, B may be transposed
/// views; C must be column-major. This is the single entry point used by
/// the public dgefmm/sgefmm drivers, the schedules (for their seven
/// sub-products), and the padding fall-backs. Instantiated for double and
/// float in winograd.cpp.
template <class T>
void fmm(T alpha, BasicView<const T> a, BasicView<const T> b, T beta,
         BasicView<T> c, CtxT<T>& ctx, int depth);

/// Interprets one verified schedule table (verify/schedule_ir.hpp) at one
/// recursion level of the even-dimensioned core: allocates the table's
/// declared temporaries from the arena in declaration order, then executes
/// its linear-combination steps with the add_kernels and its product steps
/// as recursive fmm calls. The table's algebra and temporary lifetimes are
/// static_asserted in verify/proofs.hpp, and this routine is the only
/// executor, so the proof covers exactly what runs -- in both precisions,
/// since the footprint accounting is in elements, not bytes.
template <class T>
void run_ir_schedule(const verify::Schedule& s, T alpha, BasicView<const T> a,
                     BasicView<const T> b, T beta, BasicView<T> c,
                     CtxT<T>& ctx, int depth);

extern template void fmm<double>(double, ConstView, ConstView, double,
                                 MutView, CtxT<double>&, int);
extern template void fmm<float>(float, ConstViewF, ConstViewF, float,
                                MutViewF, CtxT<float>&, int);
extern template void run_ir_schedule<double>(const verify::Schedule&, double,
                                             ConstView, ConstView, double,
                                             MutView, CtxT<double>&, int);
extern template void run_ir_schedule<float>(const verify::Schedule&, float,
                                            ConstViewF, ConstViewF, float,
                                            MutViewF, CtxT<float>&, int);

/// Views an arena allocation as an m x n column-major matrix.
template <class T>
inline BasicView<T> arena_matrix(ArenaT<T>& arena, index_t m, index_t n) {
  T* p = arena.alloc(static_cast<std::size_t>(m) * n);
  return make_view(p, m, n, m > 0 ? m : 1);
}

}  // namespace strassen::core::detail
