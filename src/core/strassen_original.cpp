#include "core/strassen_original.hpp"

#include "core/add_kernels.hpp"
#include "core/winograd.hpp"
#include "verify/proofs.hpp"

namespace strassen::core::detail {

// C = alpha * A * B (+ beta * C) via the 1969 construction:
//   P1 = (A11+A22)(B11+B22)   P5 = (A11+A12) B22
//   P2 = (A21+A22) B11        P6 = (A21-A11)(B11+B12)
//   P3 = A11 (B12-B22)        P7 = (A12-A22)(B21+B22)
//   P4 = A22 (B21-B11)
//   C11 = P1+P4-P5+P7  C12 = P3+P5  C21 = P2+P4  C22 = P1-P2+P3+P6
//
// The beta == 0 core is the verified IR table verify::kOriginalBeta0
// (temporaries T1 (mk/4), T2 (kn/4), P (mn/4)); general beta wraps it with
// one full-size C temporary and folds beta*C in afterwards.
template <class T>
void run_original_schedule(T alpha, BasicView<const T> a, BasicView<const T> b,
                           T beta, BasicView<T> c, CtxT<T>& ctx, int depth) {
  if (beta == T(0)) {
    run_ir_schedule<T>(verify::kOriginalBeta0, alpha, a, b, T(0), c, ctx,
                       depth);
    return;
  }
  ArenaScopeT scope(*ctx.arena);
  BasicView<T> ctmp = arena_matrix(*ctx.arena, c.rows, c.cols);
  run_ir_schedule<T>(verify::kOriginalBeta0, alpha, a, b, T(0), ctmp, ctx,
                     depth);
  axpby(T(1), BasicView<const T>(ctmp), beta, c);
}

template void run_original_schedule<double>(double, ConstView, ConstView,
                                            double, MutView, CtxT<double>&,
                                            int);
template void run_original_schedule<float>(float, ConstViewF, ConstViewF,
                                           float, MutViewF, CtxT<float>&,
                                           int);

}  // namespace strassen::core::detail
