#include "core/strassen_original.hpp"

#include "core/add_kernels.hpp"

namespace strassen::core::detail {

namespace {

// C = alpha * A * B (beta == 0) via the 1969 construction:
//   P1 = (A11+A22)(B11+B22)   P5 = (A11+A12) B22
//   P2 = (A21+A22) B11        P6 = (A21-A11)(B11+B12)
//   P3 = A11 (B12-B22)        P7 = (A12-A22)(B21+B22)
//   P4 = A22 (B21-B11)
//   C11 = P1+P4-P5+P7  C12 = P3+P5  C21 = P2+P4  C22 = P1-P2+P3+P6
// Temporaries: T1 (mk/4), T2 (kn/4), P (mn/4).
void schedule_original_beta0(double alpha, ConstView a, ConstView b,
                             MutView c, Ctx& ctx, int depth) {
  const index_t m2 = a.rows / 2, k2 = a.cols / 2, n2 = b.cols / 2;
  ArenaScope scope(*ctx.arena);
  MutView t1 = arena_matrix(*ctx.arena, m2, k2);
  MutView t2 = arena_matrix(*ctx.arena, k2, n2);
  MutView p = arena_matrix(*ctx.arena, m2, n2);

  ConstView a11 = a.block(0, 0, m2, k2), a12 = a.block(0, k2, m2, k2);
  ConstView a21 = a.block(m2, 0, m2, k2), a22 = a.block(m2, k2, m2, k2);
  ConstView b11 = b.block(0, 0, k2, n2), b12 = b.block(0, n2, k2, n2);
  ConstView b21 = b.block(k2, 0, k2, n2), b22 = b.block(k2, n2, k2, n2);
  MutView c11 = c.block(0, 0, m2, n2), c12 = c.block(0, n2, m2, n2);
  MutView c21 = c.block(m2, 0, m2, n2), c22 = c.block(m2, n2, m2, n2);

  add(a11, a22, t1);
  add(b11, b22, t2);
  fmm(alpha, t1, t2, 0.0, p, ctx, depth + 1);  // P1
  copy_into(p, c11);
  copy_into(p, c22);

  add(a21, a22, t1);
  fmm(alpha, t1, b11, 0.0, c21, ctx, depth + 1);  // P2
  sub_inplace(c22, c21);

  sub(b12, b22, t2);
  fmm(alpha, a11, t2, 0.0, c12, ctx, depth + 1);  // P3
  add_inplace(c22, c12);

  sub(b21, b11, t2);
  fmm(alpha, a22, t2, 0.0, p, ctx, depth + 1);  // P4
  add_inplace(c11, p);
  add_inplace(c21, p);

  add(a11, a12, t1);
  fmm(alpha, t1, b22, 0.0, p, ctx, depth + 1);  // P5
  sub_inplace(c11, p);
  add_inplace(c12, p);

  sub(a21, a11, t1);
  add(b11, b12, t2);
  fmm(alpha, t1, t2, 0.0, p, ctx, depth + 1);  // P6
  add_inplace(c22, p);

  sub(a12, a22, t1);
  add(b21, b22, t2);
  fmm(alpha, t1, t2, 0.0, p, ctx, depth + 1);  // P7
  add_inplace(c11, p);
}

}  // namespace

void run_original_schedule(double alpha, ConstView a, ConstView b,
                           double beta, MutView c, Ctx& ctx, int depth) {
  if (beta == 0.0) {
    schedule_original_beta0(alpha, a, b, c, ctx, depth);
    return;
  }
  ArenaScope scope(*ctx.arena);
  MutView ctmp = arena_matrix(*ctx.arena, c.rows, c.cols);
  schedule_original_beta0(alpha, a, b, ctmp, ctx, depth);
  axpby(1.0, ctmp, beta, c);
}

}  // namespace strassen::core::detail
