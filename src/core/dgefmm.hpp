// DGEFMM: the public, DGEMM-compatible entry point of the library.
//
// Computes C <- alpha * op(A) * op(B) + beta * C exactly like the Level 3
// BLAS DGEMM, but uses the Winograd variant of Strassen's algorithm above
// the cutoff, with dynamic peeling for odd dimensions and the minimal
// temporary storage described in the paper (Section 3). A program calls it
// wherever it called DGEMM; no other change is required -- the property the
// paper demonstrates with the ISDA eigensolver.
#pragma once

#include "core/types.hpp"
#include "core/workspace.hpp"
#include "support/matrix.hpp"

namespace strassen::core {

/// C <- alpha * op(A) * op(B) + beta * C.
///
/// Arguments mirror DGEMM: op(A) is m x k, op(B) is k x n, C is m x n,
/// all column-major with leading dimensions lda/ldb/ldc.
///
/// Returns 0 on success, or the 1-based index of the first invalid argument
/// (BLAS XERBLA convention): 3 for m < 0, 4 for n < 0, 5 for k < 0, 8 for
/// lda too small, 10 for ldb, 13 for ldc.
///
/// Failure contract (DESIGN.md section 7): all fallible workspace
/// acquisition happens before the first write to C. If it fails, the
/// behaviour follows cfg.on_failure -- strict (default) throws the typed
/// error (WorkspaceError / std::bad_alloc) with C untouched; fallback
/// silently degrades to the workspace-free blas::dgemm path, records it in
/// cfg.stats->fallbacks, and returns 0 with a correct product. The
/// exception-free C/Fortran bindings live in core/cabi.hpp.
[[nodiscard]] int dgefmm(Trans transa, Trans transb, index_t m, index_t n,
                         index_t k, double alpha, const double* a,
                         index_t lda, const double* b, index_t ldb,
                         double beta, double* c, index_t ldc,
                         const DgefmmConfig& cfg = DgefmmConfig{});

/// View-based convenience wrapper: C <- alpha*A*B + beta*C where A and B
/// may be transposed views and C is column-major.
void dgefmm_view(double alpha, ConstView a, ConstView b, double beta,
                 MutView c, const DgefmmConfig& cfg = DgefmmConfig{});

/// Workspace (in doubles) the corresponding dgefmm call allocates at peak;
/// size a reusable Arena with this to make repeated calls allocation-free.
[[nodiscard]] count_t dgefmm_workspace_doubles(
    index_t m, index_t n, index_t k, double beta,
    const DgefmmConfig& cfg = DgefmmConfig{});

}  // namespace strassen::core
