// Strassen's original 1969 construction (7 multiplies, 18 additions).
//
// Used for the operation-count comparison against the Winograd variant
// (eqs. 4 vs. 5) and as the algorithmic basis of the CRAY SGEMMS-like
// comparator. Runs under the same recursion driver, cutoff criteria, and
// odd-dimension strategies as the Winograd schedules.
#pragma once

#include "core/winograd.hpp"

namespace strassen::core::detail {

/// Executes one level of the original construction on an even-dimensioned
/// core. beta != 0 is handled through a full product temporary (the
/// original combination pattern reuses C's quadrants as scratch, so beta*C
/// cannot be folded in-place).
template <class T>
void run_original_schedule(T alpha, BasicView<const T> a, BasicView<const T> b,
                           T beta, BasicView<T> c, CtxT<T>& ctx, int depth);

extern template void run_original_schedule<double>(double, ConstView,
                                                   ConstView, double, MutView,
                                                   CtxT<double>&, int);
extern template void run_original_schedule<float>(float, ConstViewF,
                                                  ConstViewF, float, MutViewF,
                                                  CtxT<float>&, int);

}  // namespace strassen::core::detail
