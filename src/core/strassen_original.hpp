// Strassen's original 1969 construction (7 multiplies, 18 additions).
//
// Used for the operation-count comparison against the Winograd variant
// (eqs. 4 vs. 5) and as the algorithmic basis of the CRAY SGEMMS-like
// comparator. Runs under the same recursion driver, cutoff criteria, and
// odd-dimension strategies as the Winograd schedules.
#pragma once

#include "core/winograd.hpp"

namespace strassen::core::detail {

/// Executes one level of the original construction on an even-dimensioned
/// core. beta != 0 is handled through a full product temporary (the
/// original combination pattern reuses C's quadrants as scratch, so beta*C
/// cannot be folded in-place).
void run_original_schedule(double alpha, ConstView a, ConstView b,
                           double beta, MutView c, Ctx& ctx, int depth);

}  // namespace strassen::core::detail
