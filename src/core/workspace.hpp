// Exact workspace sizing for DGEFMM (Section 3.2 / Table 1).
//
// The recursion-walking functions mirror the allocations the schedules
// make, so an arena sized by dgefmm_workspace_doubles never grows and
// never overflows. The closed-form bounds are the paper's formulas; the
// tests assert  exact <= bound  for every scheme and shape.
#pragma once

#include "core/types.hpp"
#include "support/config.hpp"

namespace strassen::core {

/// Copies the sizing-relevant fields (cutoff, scheme, odd strategy, fused
/// levels) of a float configuration into a double one. Every workspace
/// predictor counts *elements*, not bytes -- the recursion allocates by
/// matrix shape only (verify::footprint_doubles is a pure element count) --
/// so the float sizes are exactly the double sizes under the same fields,
/// and the float entry points below forward through this view.
[[nodiscard]] DgefmmConfig sizing_config(const SgefmmConfig& cfg);

/// Exact number of workspace doubles a dgefmm call with this configuration
/// will allocate at peak for C(m x n) = alpha*op(A)(m x k)*op(B)(k x n)
/// + beta*C.
[[nodiscard]] count_t workspace_doubles(index_t m, index_t n, index_t k,
                                        double beta,
                                        const DgefmmConfig& cfg);

/// Exact number of workspace floats the matching sgefmm call allocates at
/// peak (the same element count as the double schedule; see sizing_config).
[[nodiscard]] count_t workspace_floats(index_t m, index_t n, index_t k,
                                       float beta, const SgefmmConfig& cfg);

/// Exact workspace of the *classic* recursion entered at `depth` (the
/// fused schedule uses this to size its below-fusion leaves; Scheme::fused
/// resolves like Scheme::automatic here).
[[nodiscard]] count_t workspace_doubles_at(index_t m, index_t n, index_t k,
                                           double beta,
                                           const DgefmmConfig& cfg,
                                           int depth);

/// Exact number of workspace doubles the task-DAG parallel driver carves
/// from its single up-front reservation for C(m x n) = alpha*A(m x k)*
/// B(k x n) + beta*C at `par_depth` DAG levels (1 or 2) with `lanes`
/// scheduler lanes: one (mb x nb) product temporary per product node of
/// the 7^par_depth grid, plus one worker-local leaf sub-arena per lane.
/// The parallel determinism tests assert predicted == measured.
[[nodiscard]] count_t parallel_workspace_doubles(index_t m, index_t n,
                                                 index_t k,
                                                 const DgefmmConfig& cfg,
                                                 int par_depth, int lanes);

/// Float twin of parallel_workspace_doubles (same element count; see
/// sizing_config).
[[nodiscard]] count_t parallel_workspace_floats(index_t m, index_t n,
                                                index_t k,
                                                const SgefmmConfig& cfg,
                                                int par_depth, int lanes);

/// Paper bound for STRASSEN1 with beta == 0: (m*max(k,n) + kn)/3.
double bound_strassen1_beta0(index_t m, index_t k, index_t n);

/// Paper bound for STRASSEN1 with beta != 0: (4mn + m*max(k,n) + kn)/3.
double bound_strassen1_general(index_t m, index_t k, index_t n);

/// Paper bound for STRASSEN2: (mk + kn + mn)/3.
double bound_strassen2(index_t m, index_t k, index_t n);

}  // namespace strassen::core
