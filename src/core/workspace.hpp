// Exact workspace sizing for DGEFMM (Section 3.2 / Table 1).
//
// The recursion-walking functions mirror the allocations the schedules
// make, so an arena sized by dgefmm_workspace_doubles never grows and
// never overflows. The closed-form bounds are the paper's formulas; the
// tests assert  exact <= bound  for every scheme and shape.
#pragma once

#include "core/types.hpp"
#include "support/config.hpp"

namespace strassen::core {

/// Exact number of workspace doubles a dgefmm call with this configuration
/// will allocate at peak for C(m x n) = alpha*op(A)(m x k)*op(B)(k x n)
/// + beta*C.
[[nodiscard]] count_t workspace_doubles(index_t m, index_t n, index_t k,
                                        double beta,
                                        const DgefmmConfig& cfg);

/// Exact workspace of the *classic* recursion entered at `depth` (the
/// fused schedule uses this to size its below-fusion leaves; Scheme::fused
/// resolves like Scheme::automatic here).
[[nodiscard]] count_t workspace_doubles_at(index_t m, index_t n, index_t k,
                                           double beta,
                                           const DgefmmConfig& cfg,
                                           int depth);

/// Paper bound for STRASSEN1 with beta == 0: (m*max(k,n) + kn)/3.
double bound_strassen1_beta0(index_t m, index_t k, index_t n);

/// Paper bound for STRASSEN1 with beta != 0: (4mn + m*max(k,n) + kn)/3.
double bound_strassen1_general(index_t m, index_t k, index_t n);

/// Paper bound for STRASSEN2: (mk + kn + mn)/3.
double bound_strassen2(index_t m, index_t k, index_t n);

}  // namespace strassen::core
