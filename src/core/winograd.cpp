#include "core/winograd.hpp"

#include <algorithm>
#include <cassert>

#include "blas/gemm.hpp"
#include "core/add_kernels.hpp"
#include "core/padding.hpp"
#include "core/peeling.hpp"
#include "core/strassen_original.hpp"

namespace strassen::core::detail {

MutView arena_matrix(Arena& arena, index_t m, index_t n) {
  double* p = arena.alloc(static_cast<std::size_t>(m) * n);
  return make_view(p, m, n, m > 0 ? m : 1);
}

namespace {

// Quadrants of an even-dimensioned logical matrix.
struct Quads {
  ConstView q11, q12, q21, q22;
};

Quads quadrants(ConstView x) {
  const index_t r2 = x.rows / 2, c2 = x.cols / 2;
  return {x.block(0, 0, r2, c2), x.block(0, c2, r2, c2),
          x.block(r2, 0, r2, c2), x.block(r2, c2, r2, c2)};
}

struct MutQuads {
  MutView q11, q12, q21, q22;
};

MutQuads quadrants(MutView x) {
  const index_t r2 = x.rows / 2, c2 = x.cols / 2;
  return {x.block(0, 0, r2, c2), x.block(0, c2, r2, c2),
          x.block(r2, 0, r2, c2), x.block(r2, c2, r2, c2)};
}

// STRASSEN1, beta == 0: C = alpha*A*B with the products written straight
// into C's quadrants (Douglas-style 22-step schedule; DESIGN.md section 1).
void schedule_s1_beta0(double alpha, ConstView a, ConstView b, MutView c,
                       Ctx& ctx, int depth) {
  const index_t m2 = a.rows / 2, k2 = a.cols / 2, n2 = b.cols / 2;
  ArenaScope scope(*ctx.arena);
  // X holds m2 x k2 operands and, later, the m2 x n2 product P1.
  double* xbuf = ctx.arena->alloc(static_cast<std::size_t>(m2) *
                                  std::max(k2, n2));
  MutView xs = make_view(xbuf, m2, k2, m2 > 0 ? m2 : 1);
  MutView xp = make_view(xbuf, m2, n2, m2 > 0 ? m2 : 1);
  MutView y = arena_matrix(*ctx.arena, k2, n2);

  const Quads A = quadrants(a);
  const Quads B = quadrants(b);
  MutQuads C = quadrants(c);

  sub(A.q11, A.q21, xs);                       //  1. X  = S3
  sub(B.q22, B.q12, y);                        //  2. Y  = T3
  fmm(alpha, xs, y, 0.0, C.q21, ctx, depth + 1);  //  3. C21 = a*P7
  add(A.q21, A.q22, xs);                       //  4. X  = S1
  sub(B.q12, B.q11, y);                        //  5. Y  = T1
  fmm(alpha, xs, y, 0.0, C.q22, ctx, depth + 1);  //  6. C22 = a*P5
  sub_inplace(xs, A.q11);                      //  7. X  = S2
  rsub_inplace(y, B.q22);                      //  8. Y  = T2
  fmm(alpha, xs, y, 0.0, C.q12, ctx, depth + 1);  //  9. C12 = a*P6
  rsub_inplace(xs, A.q12);                     // 10. X  = S4
  fmm(alpha, xs, B.q22, 0.0, C.q11, ctx, depth + 1);  // 11. C11 = a*P3
  fmm(alpha, A.q11, B.q11, 0.0, xp, ctx, depth + 1);  // 12. X  = a*P1
  add_inplace(C.q12, xp);                      // 13. C12 = a*U2
  add_inplace(C.q21, C.q12);                   // 14. C21 = a*U3
  add_inplace(C.q12, C.q22);                   // 15. C12 = a*U4
  add_inplace(C.q22, C.q21);                   // 16. C22 = a*U7  (final)
  add_inplace(C.q12, C.q11);                   // 17. C12 = a*U5  (final)
  sub_inplace(y, B.q21);                       // 18. Y  = T4
  fmm(alpha, A.q22, y, 0.0, C.q11, ctx, depth + 1);   // 19. C11 = a*P4
  sub_inplace(C.q21, C.q11);                   // 20. C21 = a*U6  (final)
  fmm(alpha, A.q12, B.q21, 0.0, C.q11, ctx, depth + 1);  // 21. C11 = a*P2
  add_inplace(C.q11, xp);                      // 22. C11 final
}

// STRASSEN1, general beta: four product temporaries Q1..Q4 per level;
// beta*C is folded in during the final accumulation passes.
void schedule_s1_general(double alpha, ConstView a, ConstView b, double beta,
                         MutView c, Ctx& ctx, int depth) {
  const index_t m2 = a.rows / 2, k2 = a.cols / 2, n2 = b.cols / 2;
  ArenaScope scope(*ctx.arena);
  MutView r1 = arena_matrix(*ctx.arena, m2, k2);
  MutView r2 = arena_matrix(*ctx.arena, k2, n2);
  MutView q1 = arena_matrix(*ctx.arena, m2, n2);
  MutView q2 = arena_matrix(*ctx.arena, m2, n2);
  MutView q3 = arena_matrix(*ctx.arena, m2, n2);
  MutView q4 = arena_matrix(*ctx.arena, m2, n2);

  const Quads A = quadrants(a);
  const Quads B = quadrants(b);
  MutQuads C = quadrants(c);

  add(A.q21, A.q22, r1);                         // S1
  sub(B.q12, B.q11, r2);                         // T1
  fmm(alpha, r1, r2, 0.0, q1, ctx, depth + 1);   // Q1 = a*P5
  sub_inplace(r1, A.q11);                        // S2
  rsub_inplace(r2, B.q22);                       // T2
  fmm(alpha, r1, r2, 0.0, q2, ctx, depth + 1);   // Q2 = a*P6
  fmm(alpha, A.q11, B.q11, 0.0, q3, ctx, depth + 1);  // Q3 = a*P1
  add_inplace(q2, q3);                           // Q2 = a*U2
  fmm(alpha, A.q12, B.q21, 0.0, q4, ctx, depth + 1);  // Q4 = a*P2
  add_inplace(q3, q4);                           // Q3 = a*(P1+P2)
  axpby(1.0, q3, beta, C.q11);                   // C11 final
  rsub_inplace(r1, A.q12);                       // S4
  fmm(alpha, r1, B.q22, 0.0, q3, ctx, depth + 1);  // Q3 = a*P3
  axpby(1.0, q2, beta, C.q12);
  add_inplace(C.q12, q1);
  add_inplace(C.q12, q3);                        // C12 final
  sub_inplace(r2, B.q21);                        // T4
  fmm(alpha, A.q22, r2, 0.0, q3, ctx, depth + 1);  // Q3 = a*P4
  sub(A.q11, A.q21, r1);                         // S3
  sub(B.q22, B.q12, r2);                         // T3
  fmm(alpha, r1, r2, 0.0, q4, ctx, depth + 1);   // Q4 = a*P7
  add_inplace(q2, q4);                           // Q2 = a*U3
  axpby(1.0, q2, beta, C.q21);
  sub_inplace(C.q21, q3);                        // C21 final
  axpby(1.0, q2, beta, C.q22);
  add_inplace(C.q22, q1);                        // C22 final
}

// STRASSEN2 (Figure 1): three temporaries, recursive multiply-accumulate.
void schedule_s2(double alpha, ConstView a, ConstView b, double beta,
                 MutView c, Ctx& ctx, int depth) {
  const index_t m2 = a.rows / 2, k2 = a.cols / 2, n2 = b.cols / 2;
  ArenaScope scope(*ctx.arena);
  MutView r1 = arena_matrix(*ctx.arena, m2, k2);
  MutView r2 = arena_matrix(*ctx.arena, k2, n2);
  MutView r3 = arena_matrix(*ctx.arena, m2, n2);

  const Quads A = quadrants(a);
  const Quads B = quadrants(b);
  MutQuads C = quadrants(c);

  sub(B.q12, B.q11, r2);                          //  1. R2 = T1
  add(A.q21, A.q22, r1);                          //  2. R1 = S1
  fmm(alpha, r1, r2, 0.0, r3, ctx, depth + 1);    //  3. R3 = a*P5
  axpby(1.0, r3, beta, C.q12);                    //  4. C12 = b*C12 + a*P5
  axpby(1.0, r3, beta, C.q22);                    //  5. C22 = b*C22 + a*P5
  sub_inplace(r1, A.q11);                         //  6. R1 = S2
  rsub_inplace(r2, B.q22);                        //  7. R2 = T2
  fmm(alpha, A.q11, B.q11, 0.0, r3, ctx, depth + 1);  //  8. R3 = a*P1
  axpby(1.0, r3, beta, C.q11);                    //  9. C11 = b*C11 + a*P1
  fmm(alpha, r1, r2, 1.0, r3, ctx, depth + 1);    // 10. R3 = a*U2
  fmm(alpha, A.q12, B.q21, 1.0, C.q11, ctx, depth + 1);  // 11. C11 final
  rsub_inplace(r1, A.q12);                        // 12. R1 = S4
  fmm(alpha, r1, B.q22, 1.0, C.q12, ctx, depth + 1);  // 13. C12 += a*P3
  add_inplace(C.q12, r3);                         // 14. C12 final
  sub_inplace(r2, B.q21);                         // 15. R2 = T4
  fmm(-alpha, A.q22, r2, beta, C.q21, ctx, depth + 1);  // 16. C21 = b*C21 - a*P4
  sub(A.q11, A.q21, r1);                          // 17. R1 = S3
  sub(B.q22, B.q12, r2);                          // 18. R2 = T3
  fmm(alpha, r1, r2, 1.0, r3, ctx, depth + 1);    // 19. R3 = a*U3
  add_inplace(C.q21, r3);                         // 20. C21 final
  add_inplace(C.q22, r3);                         // 21. C22 final
}

// Dispatches the even-dimensioned core to the configured schedule.
void run_schedule(double alpha, ConstView a, ConstView b, double beta,
                  MutView c, Ctx& ctx, int depth) {
  Scheme scheme = ctx.cfg->scheme;
  if (scheme == Scheme::automatic || scheme == Scheme::fused) {
    // Scheme::fused reaches the classic recursion only below its fusion
    // depth, where it behaves like the paper's automatic DGEFMM.
    scheme = (beta == 0.0) ? Scheme::strassen1 : Scheme::strassen2;
  }
  switch (scheme) {
    case Scheme::automatic:  // unreachable after resolution above
    case Scheme::fused:      // unreachable after resolution above
    case Scheme::strassen1:
      if (beta == 0.0) {
        schedule_s1_beta0(alpha, a, b, c, ctx, depth);
      } else {
        schedule_s1_general(alpha, a, b, beta, c, ctx, depth);
      }
      return;
    case Scheme::strassen2:
      schedule_s2(alpha, a, b, beta, c, ctx, depth);
      return;
    case Scheme::original:
      run_original_schedule(alpha, a, b, beta, c, ctx, depth);
      return;
  }
}

}  // namespace

void fmm(double alpha, ConstView a, ConstView b, double beta, MutView c,
         Ctx& ctx, int depth) {
  const index_t m = c.rows, n = c.cols, k = a.cols;
  assert(a.rows == m && b.rows == k && b.cols == n);
  if (m == 0 || n == 0) return;

  const bool degenerate = (m < 2 || k < 2 || n < 2);
  if (degenerate || alpha == 0.0 ||
      ctx.cfg->cutoff.stop(m, k, n, depth)) {
    blas::gemm_view(alpha, a, b, beta, c);
    if (ctx.stats != nullptr) ++ctx.stats->base_gemms;
    return;
  }

  const bool odd = ((m | k | n) & 1) != 0;
  if (odd) {
    switch (ctx.cfg->odd) {
      case OddStrategy::dynamic_peeling:
        break;  // handled below
      case OddStrategy::dynamic_padding:
        pad_dynamic(alpha, a, b, beta, c, ctx, depth);
        return;
      case OddStrategy::static_padding:
        // The public driver pre-pads, so odd dimensions inside the
        // recursion mean the padded depth has been exhausted: stop.
        blas::gemm_view(alpha, a, b, beta, c);
        if (ctx.stats != nullptr) ++ctx.stats->base_gemms;
        return;
    }
  }

  if (ctx.stats != nullptr) {
    ++ctx.stats->strassen_levels;
    ctx.stats->max_depth = std::max(ctx.stats->max_depth, depth + 1);
  }

  const index_t me = m & ~index_t{1};
  const index_t ke = k & ~index_t{1};
  const index_t ne = n & ~index_t{1};
  run_schedule(alpha, a.block(0, 0, me, ke), b.block(0, 0, ke, ne), beta,
               c.block(0, 0, me, ne), ctx, depth);
  if (odd) {
    const int fixups = peel_fixups(alpha, a, b, beta, c, me, ke, ne);
    if (ctx.stats != nullptr) ctx.stats->peel_fixups += fixups;
  }
  if (ctx.stats != nullptr) {
    ctx.stats->peak_workspace =
        std::max(ctx.stats->peak_workspace, ctx.arena->peak());
  }
}

}  // namespace strassen::core::detail
