#include "core/winograd.hpp"

#include <algorithm>
#include <cassert>

#include "blas/gemm.hpp"
#include "core/add_kernels.hpp"
#include "core/padding.hpp"
#include "core/peeling.hpp"
#include "core/strassen_original.hpp"
#include "verify/proofs.hpp"

namespace strassen::core::detail {

MutView arena_matrix(Arena& arena, index_t m, index_t n) {
  double* p = arena.alloc(static_cast<std::size_t>(m) * n);
  return make_view(p, m, n, m > 0 ? m : 1);
}

void run_ir_schedule(const verify::Schedule& s, double alpha, ConstView a,
                     ConstView b, double beta, MutView c, Ctx& ctx,
                     int depth) {
  namespace v = verify;
  const index_t m2 = a.rows / 2, k2 = a.cols / 2, n2 = b.cols / 2;
  ArenaScope scope(*ctx.arena);

  // Arena temporaries, allocated in declaration order so the arena layout
  // (and with it the workspace accounting that verify::footprint_doubles
  // charges) is deterministic. The dual-role STRASSEN1 X buffer is the only
  // temporary whose logical shape changes between writes, hence the
  // per-temp current extents.
  double* tbuf[v::kMaxTemps] = {};
  index_t tld[v::kMaxTemps] = {};
  index_t trows[v::kMaxTemps] = {};
  index_t tcols[v::kMaxTemps] = {};
  for (int d = 0; d < s.ntemps; ++d) {
    const v::TempDecl& td = s.temps[d];
    const int t = td.reg - v::kT0;
    index_t r = 0, cl = 0;
    switch (td.shape) {
      case v::Shape::mk: r = m2; cl = k2; break;
      case v::Shape::kn: r = k2; cl = n2; break;
      case v::Shape::mn: r = m2; cl = n2; break;
      case v::Shape::m_maxkn: r = m2; cl = std::max(k2, n2); break;
    }
    tbuf[t] = ctx.arena->alloc(static_cast<std::size_t>(r) * cl);
    tld[t] = r > 0 ? r : 1;
  }

  const auto cquad = [&](int q) -> MutView {
    return c.block((q >> 1) * m2, (q & 1) * n2, m2, n2);
  };
  const auto src = [&](int reg) -> ConstView {
    if (reg < v::kB11) {
      const int q = reg - v::kA11;
      return a.block((q >> 1) * m2, (q & 1) * k2, m2, k2);
    }
    if (reg < v::kC11) {
      const int q = reg - v::kB11;
      return b.block((q >> 1) * k2, (q & 1) * n2, k2, n2);
    }
    if (reg < v::kT0) return cquad(reg - v::kC11);
    const int t = reg - v::kT0;
    return make_view(static_cast<const double*>(tbuf[t]), trows[t], tcols[t],
                     tld[t]);
  };
  const auto dst = [&](int reg, index_t r, index_t cl) -> MutView {
    if (reg >= v::kT0) {
      const int t = reg - v::kT0;
      trows[t] = r;
      tcols[t] = cl;
      return make_view(tbuf[t], r, cl, tld[t]);
    }
    assert(reg >= v::kC11 && r == m2 && cl == n2);
    return cquad(reg - v::kC11);
  };
  // Numeric value of a coefficient at this level's beta.
  const auto coef = [beta](const v::Coef& cf) {
    return cf.s == v::Sym::beta ? cf.v * beta : cf.v;
  };
  // True for a literal +/-1 with no symbolic factor -- the coefficients the
  // fixed add/sub kernels implement. Anything else goes through axpby/axpy,
  // which resolve their own numeric special cases.
  const auto unit = [](const v::Coef& cf) {
    return cf.s == v::Sym::one && (cf.v == 1.0 || cf.v == -1.0);
  };

  for (int i = 0; i < s.nsteps; ++i) {
    const v::Step& st = s.steps[i];
    if (st.op == v::Op::mul) {
      const ConstView x = src(st.x);
      const ConstView y = src(st.y);
      MutView d = dst(st.dst, x.rows, y.cols);
      fmm(st.am * alpha, x, y, coef(st.bc), d, ctx, depth + 1);
      continue;
    }
    int self = -1;
    for (int t = 0; t < st.nt; ++t) {
      if (st.t[t].reg == st.dst) self = t;
    }
    const ConstView s0 = src(st.t[0].reg);
    MutView d = dst(st.dst, s0.rows, s0.cols);
    if (self < 0) {
      if (st.nt == 1 && st.t[0].c.s == v::Sym::one && st.t[0].c.v == 1.0) {
        copy_into(s0, d);
      } else if (st.nt == 2 && unit(st.t[0].c) && unit(st.t[1].c)) {
        const ConstView s1 = src(st.t[1].reg);
        if (st.t[0].c.v == 1.0 && st.t[1].c.v == 1.0) {
          add(s0, s1, d);
        } else if (st.t[0].c.v == 1.0) {
          sub(s0, s1, d);
        } else if (st.t[1].c.v == 1.0) {
          sub(s1, s0, d);
        } else {
          axpby(-1.0, s0, 0.0, d);
          axpy(-1.0, s1, d);
        }
      } else {
        axpby(coef(st.t[0].c), s0, 0.0, d);
        for (int t = 1; t < st.nt; ++t) {
          axpy(coef(st.t[t].c), src(st.t[t].reg), d);
        }
      }
    } else if (st.nt == 2) {
      const v::Term& ts = st.t[self];
      const v::Term& to = st.t[1 - self];
      const ConstView x = src(to.reg);
      if (unit(ts.c) && unit(to.c)) {
        if (ts.c.v == 1.0 && to.c.v == 1.0) {
          add_inplace(d, x);
        } else if (ts.c.v == 1.0) {
          sub_inplace(d, x);
        } else if (to.c.v == 1.0) {
          rsub_inplace(d, x);
        } else {
          axpby(-1.0, x, -1.0, d);
        }
      } else {
        axpby(coef(to.c), x, coef(ts.c), d);
      }
    } else {
      // Self-referencing with 1 or 3 terms: unused by the shipped tables
      // but kept total so the interpreter handles any schedule the checker
      // accepts.
      double sc = 0.0;
      for (int t = 0; t < st.nt; ++t) {
        if (t == self) sc = coef(st.t[t].c);
      }
      bool first = true;
      for (int t = 0; t < st.nt; ++t) {
        if (t == self) continue;
        if (first) {
          axpby(coef(st.t[t].c), src(st.t[t].reg), sc, d);
          first = false;
        } else {
          axpy(coef(st.t[t].c), src(st.t[t].reg), d);
        }
      }
      if (first) scale(sc, d);
    }
  }
}

namespace {

// Dispatches the even-dimensioned core to the configured schedule's
// verified IR table (verify/schedule_ir.hpp; proofs in verify/proofs.hpp).
void run_schedule(double alpha, ConstView a, ConstView b, double beta,
                  MutView c, Ctx& ctx, int depth) {
  Scheme scheme = ctx.cfg->scheme;
  if (scheme == Scheme::automatic || scheme == Scheme::fused) {
    // Scheme::fused reaches the classic recursion only below its fusion
    // depth, where it behaves like the paper's automatic DGEFMM.
    scheme = (beta == 0.0) ? Scheme::strassen1 : Scheme::strassen2;
  }
  switch (scheme) {
    case Scheme::automatic:  // unreachable after resolution above
    case Scheme::fused:      // unreachable after resolution above
    case Scheme::strassen1:
      if (beta == 0.0) {
        run_ir_schedule(verify::kStrassen1Beta0, alpha, a, b, 0.0, c, ctx,
                        depth);
      } else {
        run_ir_schedule(verify::kStrassen1General, alpha, a, b, beta, c,
                        ctx, depth);
      }
      return;
    case Scheme::strassen2:
      run_ir_schedule(verify::kStrassen2, alpha, a, b, beta, c, ctx, depth);
      return;
    case Scheme::original:
      run_original_schedule(alpha, a, b, beta, c, ctx, depth);
      return;
  }
}

}  // namespace

void fmm(double alpha, ConstView a, ConstView b, double beta, MutView c,
         Ctx& ctx, int depth) {
  const index_t m = c.rows, n = c.cols, k = a.cols;
  assert(a.rows == m && b.rows == k && b.cols == n);
  if (m == 0 || n == 0) return;

  const bool degenerate = (m < 2 || k < 2 || n < 2);
  if (degenerate || alpha == 0.0 ||
      ctx.cfg->cutoff.stop(m, k, n, depth)) {
    blas::gemm_view(alpha, a, b, beta, c);
    if (ctx.stats != nullptr) ++ctx.stats->base_gemms;
    return;
  }

  const bool odd = ((m | k | n) & 1) != 0;
  if (odd) {
    switch (ctx.cfg->odd) {
      case OddStrategy::dynamic_peeling:
        break;  // handled below
      case OddStrategy::dynamic_padding:
        pad_dynamic(alpha, a, b, beta, c, ctx, depth);
        return;
      case OddStrategy::static_padding:
        // The public driver pre-pads, so odd dimensions inside the
        // recursion mean the padded depth has been exhausted: stop.
        blas::gemm_view(alpha, a, b, beta, c);
        if (ctx.stats != nullptr) ++ctx.stats->base_gemms;
        return;
    }
  }

  if (ctx.stats != nullptr) {
    ++ctx.stats->strassen_levels;
    ctx.stats->max_depth = std::max(ctx.stats->max_depth, depth + 1);
  }

  const index_t me = m & ~index_t{1};
  const index_t ke = k & ~index_t{1};
  const index_t ne = n & ~index_t{1};
  run_schedule(alpha, a.block(0, 0, me, ke), b.block(0, 0, ke, ne), beta,
               c.block(0, 0, me, ne), ctx, depth);
  if (odd) {
    const int fixups = peel_fixups(alpha, a, b, beta, c, me, ke, ne);
    if (ctx.stats != nullptr) ctx.stats->peel_fixups += fixups;
  }
  if (ctx.stats != nullptr) {
    ctx.stats->peak_workspace =
        std::max(ctx.stats->peak_workspace, ctx.arena->peak());
  }
}

}  // namespace strassen::core::detail
