#include "core/winograd.hpp"

#include <algorithm>
#include <cassert>

#include "blas/gemm.hpp"
#include "core/add_kernels.hpp"
#include "core/padding.hpp"
#include "core/peeling.hpp"
#include "core/strassen_original.hpp"
#include "verify/proofs.hpp"

namespace strassen::core::detail {

template <class T>
void run_ir_schedule(const verify::Schedule& s, T alpha, BasicView<const T> a,
                     BasicView<const T> b, T beta, BasicView<T> c,
                     CtxT<T>& ctx, int depth) {
  namespace v = verify;
  const index_t m2 = a.rows / 2, k2 = a.cols / 2, n2 = b.cols / 2;
  ArenaScopeT scope(*ctx.arena);

  // Arena temporaries, allocated in declaration order so the arena layout
  // (and with it the workspace accounting that verify::footprint_doubles
  // charges, an element count shared by both precisions) is deterministic.
  // The dual-role STRASSEN1 X buffer is the only temporary whose logical
  // shape changes between writes, hence the per-temp current extents.
  T* tbuf[v::kMaxTemps] = {};
  index_t tld[v::kMaxTemps] = {};
  index_t trows[v::kMaxTemps] = {};
  index_t tcols[v::kMaxTemps] = {};
  for (int d = 0; d < s.ntemps; ++d) {
    const v::TempDecl& td = s.temps[d];
    const int t = td.reg - v::kT0;
    index_t r = 0, cl = 0;
    switch (td.shape) {
      case v::Shape::mk: r = m2; cl = k2; break;
      case v::Shape::kn: r = k2; cl = n2; break;
      case v::Shape::mn: r = m2; cl = n2; break;
      case v::Shape::m_maxkn: r = m2; cl = std::max(k2, n2); break;
    }
    tbuf[t] = ctx.arena->alloc(static_cast<std::size_t>(r) * cl);
    tld[t] = r > 0 ? r : 1;
  }

  const auto cquad = [&](int q) -> BasicView<T> {
    return c.block((q >> 1) * m2, (q & 1) * n2, m2, n2);
  };
  const auto src = [&](int reg) -> BasicView<const T> {
    if (reg < v::kB11) {
      const int q = reg - v::kA11;
      return a.block((q >> 1) * m2, (q & 1) * k2, m2, k2);
    }
    if (reg < v::kC11) {
      const int q = reg - v::kB11;
      return b.block((q >> 1) * k2, (q & 1) * n2, k2, n2);
    }
    if (reg < v::kT0) return cquad(reg - v::kC11);
    const int t = reg - v::kT0;
    return make_view(static_cast<const T*>(tbuf[t]), trows[t], tcols[t],
                     tld[t]);
  };
  const auto dst = [&](int reg, index_t r, index_t cl) -> BasicView<T> {
    if (reg >= v::kT0) {
      const int t = reg - v::kT0;
      trows[t] = r;
      tcols[t] = cl;
      return make_view(tbuf[t], r, cl, tld[t]);
    }
    assert(reg >= v::kC11 && r == m2 && cl == n2);
    return cquad(reg - v::kC11);
  };
  // Numeric value of a coefficient at this level's beta. The IR stores
  // coefficients as doubles (small integers); narrow to T at the point of
  // use so the whole combine runs in the element precision.
  const auto coef = [beta](const v::Coef& cf) -> T {
    return cf.s == v::Sym::beta ? static_cast<T>(cf.v) * beta
                                : static_cast<T>(cf.v);
  };
  // True for a literal +/-1 with no symbolic factor -- the coefficients the
  // fixed add/sub kernels implement. Anything else goes through axpby/axpy,
  // which resolve their own numeric special cases.
  const auto unit = [](const v::Coef& cf) {
    return cf.s == v::Sym::one && (cf.v == 1.0 || cf.v == -1.0);
  };

  for (int i = 0; i < s.nsteps; ++i) {
    const v::Step& st = s.steps[i];
    if (st.op == v::Op::mul) {
      const BasicView<const T> x = src(st.x);
      const BasicView<const T> y = src(st.y);
      BasicView<T> d = dst(st.dst, x.rows, y.cols);
      fmm(static_cast<T>(st.am) * alpha, x, y, coef(st.bc), d, ctx,
          depth + 1);
      continue;
    }
    int self = -1;
    for (int t = 0; t < st.nt; ++t) {
      if (st.t[t].reg == st.dst) self = t;
    }
    const BasicView<const T> s0 = src(st.t[0].reg);
    BasicView<T> d = dst(st.dst, s0.rows, s0.cols);
    if (self < 0) {
      if (st.nt == 1 && st.t[0].c.s == v::Sym::one && st.t[0].c.v == 1.0) {
        copy_into(s0, d);
      } else if (st.nt == 2 && unit(st.t[0].c) && unit(st.t[1].c)) {
        const BasicView<const T> s1 = src(st.t[1].reg);
        if (st.t[0].c.v == 1.0 && st.t[1].c.v == 1.0) {
          add(s0, s1, d);
        } else if (st.t[0].c.v == 1.0) {
          sub(s0, s1, d);
        } else if (st.t[1].c.v == 1.0) {
          sub(s1, s0, d);
        } else {
          axpby(T(-1), s0, T(0), d);
          axpy(T(-1), s1, d);
        }
      } else {
        axpby(coef(st.t[0].c), s0, T(0), d);
        for (int t = 1; t < st.nt; ++t) {
          axpy(coef(st.t[t].c), src(st.t[t].reg), d);
        }
      }
    } else if (st.nt == 2) {
      const v::Term& ts = st.t[self];
      const v::Term& to = st.t[1 - self];
      const BasicView<const T> x = src(to.reg);
      if (unit(ts.c) && unit(to.c)) {
        if (ts.c.v == 1.0 && to.c.v == 1.0) {
          add_inplace(d, x);
        } else if (ts.c.v == 1.0) {
          sub_inplace(d, x);
        } else if (to.c.v == 1.0) {
          rsub_inplace(d, x);
        } else {
          axpby(T(-1), x, T(-1), d);
        }
      } else {
        axpby(coef(to.c), x, coef(ts.c), d);
      }
    } else {
      // Self-referencing with 1 or 3 terms: unused by the shipped tables
      // but kept total so the interpreter handles any schedule the checker
      // accepts.
      T sc = T(0);
      for (int t = 0; t < st.nt; ++t) {
        if (t == self) sc = coef(st.t[t].c);
      }
      bool first = true;
      for (int t = 0; t < st.nt; ++t) {
        if (t == self) continue;
        if (first) {
          axpby(coef(st.t[t].c), src(st.t[t].reg), sc, d);
          first = false;
        } else {
          axpy(coef(st.t[t].c), src(st.t[t].reg), d);
        }
      }
      if (first) scale(sc, d);
    }
  }
}

namespace {

// Dispatches the even-dimensioned core to the configured schedule's
// verified IR table (verify/schedule_ir.hpp; proofs in verify/proofs.hpp).
template <class T>
void run_schedule(T alpha, BasicView<const T> a, BasicView<const T> b,
                  T beta, BasicView<T> c, CtxT<T>& ctx, int depth) {
  Scheme scheme = ctx.cfg->scheme;
  if (scheme == Scheme::automatic || scheme == Scheme::fused) {
    // Scheme::fused reaches the classic recursion only below its fusion
    // depth, where it behaves like the paper's automatic DGEFMM.
    scheme = (beta == T(0)) ? Scheme::strassen1 : Scheme::strassen2;
  }
  switch (scheme) {
    case Scheme::automatic:  // unreachable after resolution above
    case Scheme::fused:      // unreachable after resolution above
    case Scheme::strassen1:
      if (beta == T(0)) {
        run_ir_schedule(verify::kStrassen1Beta0, alpha, a, b, T(0), c, ctx,
                        depth);
      } else {
        run_ir_schedule(verify::kStrassen1General, alpha, a, b, beta, c,
                        ctx, depth);
      }
      return;
    case Scheme::strassen2:
      run_ir_schedule(verify::kStrassen2, alpha, a, b, beta, c, ctx, depth);
      return;
    case Scheme::original:
      run_original_schedule(alpha, a, b, beta, c, ctx, depth);
      return;
  }
}

}  // namespace

template <class T>
void fmm(T alpha, BasicView<const T> a, BasicView<const T> b, T beta,
         BasicView<T> c, CtxT<T>& ctx, int depth) {
  const index_t m = c.rows, n = c.cols, k = a.cols;
  assert(a.rows == m && b.rows == k && b.cols == n);
  if (m == 0 || n == 0) return;

  const bool degenerate = (m < 2 || k < 2 || n < 2);
  if (degenerate || alpha == T(0) ||
      ctx.cfg->cutoff.stop(m, k, n, depth)) {
    blas::gemm_view(alpha, a, b, beta, c);
    if (ctx.stats != nullptr) ++ctx.stats->base_gemms;
    return;
  }

  const bool odd = ((m | k | n) & 1) != 0;
  if (odd) {
    switch (ctx.cfg->odd) {
      case OddStrategy::dynamic_peeling:
        break;  // handled below
      case OddStrategy::dynamic_padding:
        pad_dynamic(alpha, a, b, beta, c, ctx, depth);
        return;
      case OddStrategy::static_padding:
        // The public driver pre-pads, so odd dimensions inside the
        // recursion mean the padded depth has been exhausted: stop.
        blas::gemm_view(alpha, a, b, beta, c);
        if (ctx.stats != nullptr) ++ctx.stats->base_gemms;
        return;
    }
  }

  if (ctx.stats != nullptr) {
    ++ctx.stats->strassen_levels;
    ctx.stats->max_depth = std::max(ctx.stats->max_depth, depth + 1);
  }

  const index_t me = m & ~index_t{1};
  const index_t ke = k & ~index_t{1};
  const index_t ne = n & ~index_t{1};
  run_schedule(alpha, a.block(0, 0, me, ke), b.block(0, 0, ke, ne), beta,
               c.block(0, 0, me, ne), ctx, depth);
  if (odd) {
    const int fixups = peel_fixups(alpha, a, b, beta, c, me, ke, ne);
    if (ctx.stats != nullptr) ctx.stats->peel_fixups += fixups;
  }
  if (ctx.stats != nullptr) {
    ctx.stats->peak_workspace =
        std::max(ctx.stats->peak_workspace, ctx.arena->peak());
  }
}

template void fmm<double>(double, ConstView, ConstView, double, MutView,
                          CtxT<double>&, int);
template void fmm<float>(float, ConstViewF, ConstViewF, float, MutViewF,
                         CtxT<float>&, int);
template void run_ir_schedule<double>(const verify::Schedule&, double,
                                      ConstView, ConstView, double, MutView,
                                      CtxT<double>&, int);
template void run_ir_schedule<float>(const verify::Schedule&, float,
                                     ConstViewF, ConstViewF, float, MutViewF,
                                     CtxT<float>&, int);

}  // namespace strassen::core::detail
