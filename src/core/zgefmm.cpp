#include "core/zgefmm.hpp"

#include <cassert>

#include "blas/gemm.hpp"
#include "core/add_kernels.hpp"
#include "core/dgefmm.hpp"
#include "core/winograd.hpp"

namespace strassen::core {

namespace {

using cplx = std::complex<double>;

int check_args(Trans transa, Trans transb, index_t m, index_t n, index_t k,
               index_t lda, index_t ldb, index_t ldc) {
  auto ok = [](Trans t) {
    return t == Trans::no || t == Trans::transpose ||
           t == Trans::conj_transpose;
  };
  if (!ok(transa)) return 1;
  if (!ok(transb)) return 2;
  if (m < 0) return 3;
  if (n < 0) return 4;
  if (k < 0) return 5;
  const index_t a_rows = is_trans(transa) ? k : m;
  const index_t b_rows = is_trans(transb) ? n : k;
  if (lda < (a_rows > 0 ? a_rows : 1)) return 8;
  if (ldb < (b_rows > 0 ? b_rows : 1)) return 10;
  if (ldc < (m > 0 ? m : 1)) return 13;
  return 0;
}

// Extracts Re(op(X)) and Im(op(X)) into two plain column-major real
// matrices of the op'd logical shape (rows x cols).
void split_op(Trans trans, const cplx* x, index_t ldx, index_t rows,
              index_t cols, MutView re, MutView im) {
  const double sign = is_conj(trans) ? -1.0 : 1.0;
  if (!is_trans(trans)) {
    for (index_t j = 0; j < cols; ++j) {
      const cplx* col = x + j * ldx;
      for (index_t i = 0; i < rows; ++i) {
        re(i, j) = col[i].real();
        im(i, j) = sign * col[i].imag();
      }
    }
  } else {
    // op(X) = X^T or X^H: stored X is cols x rows.
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        const cplx v = x[j + i * ldx];
        re(i, j) = v.real();
        im(i, j) = sign * v.imag();
      }
    }
  }
}

// C <- alpha * (tr + i*ti applied per `make`) + beta * C, elementwise.
template <class F>
void combine_into_c(index_t m, index_t n, cplx alpha, cplx beta, cplx* c,
                    index_t ldc, F&& value) {
  for (index_t j = 0; j < n; ++j) {
    cplx* col = c + j * ldc;
    for (index_t i = 0; i < m; ++i) {
      const cplx prod = value(i, j);
      col[i] = alpha * prod + (beta == cplx(0.0) ? cplx(0.0) : beta * col[i]);
    }
  }
}

}  // namespace

int zgefmm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           cplx alpha, const cplx* a, index_t lda, const cplx* b, index_t ldb,
           cplx beta, cplx* c, index_t ldc, const DgefmmConfig& cfg) {
  if (const int info = check_args(transa, transb, m, n, k, lda, ldb, ldc);
      info != 0) {
    return info;
  }
  if (m == 0 || n == 0) return 0;
  if (k == 0 || alpha == cplx(0.0)) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        cplx& cij = c[i + j * ldc];
        cij = (beta == cplx(0.0)) ? cplx(0.0) : beta * cij;
      }
    }
    return 0;
  }

  // Real workspace: the six split operands, three product temporaries, and
  // whatever the inner DGEFMM needs (shared arena).
  DgefmmConfig inner = cfg;
  const count_t inner_ws = dgefmm_workspace_doubles(m, n, k, 0.0, inner);
  const count_t mk = static_cast<count_t>(m) * k;
  const count_t kn = static_cast<count_t>(k) * n;
  const count_t mn = static_cast<count_t>(m) * n;
  const count_t need = 2 * mk + 2 * kn + 3 * mn + mk + kn + inner_ws;

  Arena local;
  Arena* arena = cfg.workspace;
  if (arena == nullptr) {
    local.reserve(static_cast<std::size_t>(need));
    arena = &local;
  } else if (arena->in_use() == 0 &&
             arena->capacity() < static_cast<std::size_t>(need)) {
    arena->reserve(static_cast<std::size_t>(need));
  }
  inner.workspace = arena;

  ArenaScope scope(*arena);
  MutView ar = detail::arena_matrix(*arena, m, k);
  MutView ai = detail::arena_matrix(*arena, m, k);
  MutView br = detail::arena_matrix(*arena, k, n);
  MutView bi = detail::arena_matrix(*arena, k, n);
  MutView t1 = detail::arena_matrix(*arena, m, n);
  MutView t2 = detail::arena_matrix(*arena, m, n);
  MutView t3 = detail::arena_matrix(*arena, m, n);

  split_op(transa, a, lda, m, k, ar, ai);
  split_op(transb, b, ldb, k, n, br, bi);

  {
    // T3 = (Ar + Ai)(Br + Bi); the operand sums live only in this scope.
    ArenaScope sums(*arena);
    MutView sa = detail::arena_matrix(*arena, m, k);
    MutView sb = detail::arena_matrix(*arena, k, n);
    add(ar, ai, sa);
    add(br, bi, sb);
    dgefmm_view(1.0, sa, sb, 0.0, t3, inner);
  }
  dgefmm_view(1.0, ar, br, 0.0, t1, inner);  // T1 = Ar Br
  dgefmm_view(1.0, ai, bi, 0.0, t2, inner);  // T2 = Ai Bi

  // Re = T1 - T2, Im = T3 - T1 - T2, then the complex alpha/beta fold.
  combine_into_c(m, n, alpha, beta, c, ldc, [&](index_t i, index_t j) {
    const double re = t1(i, j) - t2(i, j);
    const double im = t3(i, j) - t1(i, j) - t2(i, j);
    return cplx(re, im);
  });
  return 0;
}

int zgemm4m(Trans transa, Trans transb, index_t m, index_t n, index_t k,
            cplx alpha, const cplx* a, index_t lda, const cplx* b,
            index_t ldb, cplx beta, cplx* c, index_t ldc) {
  if (const int info = check_args(transa, transb, m, n, k, lda, ldb, ldc);
      info != 0) {
    return info;
  }
  if (m == 0 || n == 0) return 0;
  if (k == 0 || alpha == cplx(0.0)) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        cplx& cij = c[i + j * ldc];
        cij = (beta == cplx(0.0)) ? cplx(0.0) : beta * cij;
      }
    }
    return 0;
  }

  Matrix ar(m, k), ai(m, k), br(k, n), bi(k, n), cr(m, n), ci(m, n);
  split_op(transa, a, lda, m, k, ar.view(), ai.view());
  split_op(transb, b, ldb, k, n, br.view(), bi.view());

  // Re(C') = Ar Br - Ai Bi ; Im(C') = Ar Bi + Ai Br (four real GEMMs).
  blas::dgemm(Trans::no, Trans::no, m, n, k, 1.0, ar.data(), ar.ld(),
              br.data(), br.ld(), 0.0, cr.data(), cr.ld());
  blas::dgemm(Trans::no, Trans::no, m, n, k, -1.0, ai.data(), ai.ld(),
              bi.data(), bi.ld(), 1.0, cr.data(), cr.ld());
  blas::dgemm(Trans::no, Trans::no, m, n, k, 1.0, ar.data(), ar.ld(),
              bi.data(), bi.ld(), 0.0, ci.data(), ci.ld());
  blas::dgemm(Trans::no, Trans::no, m, n, k, 1.0, ai.data(), ai.ld(),
              br.data(), br.ld(), 1.0, ci.data(), ci.ld());

  combine_into_c(m, n, alpha, beta, c, ldc, [&](index_t i, index_t j) {
    return cplx(cr(i, j), ci(i, j));
  });
  return 0;
}

void zgemm_reference(Trans transa, Trans transb, index_t m, index_t n,
                     index_t k, cplx alpha, const cplx* a, index_t lda,
                     const cplx* b, index_t ldb, cplx beta, cplx* c,
                     index_t ldc) {
  auto opa = [&](index_t i, index_t p) -> cplx {
    if (!is_trans(transa)) return a[i + p * lda];
    const cplx v = a[p + i * lda];
    return is_conj(transa) ? std::conj(v) : v;
  };
  auto opb = [&](index_t p, index_t j) -> cplx {
    if (!is_trans(transb)) return b[p + j * ldb];
    const cplx v = b[j + p * ldb];
    return is_conj(transb) ? std::conj(v) : v;
  };
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      cplx sum(0.0);
      for (index_t p = 0; p < k; ++p) sum += opa(i, p) * opb(p, j);
      cplx& cij = c[i + j * ldc];
      cij = alpha * sum + (beta == cplx(0.0) ? cplx(0.0) : beta * cij);
    }
  }
}

}  // namespace strassen::core
