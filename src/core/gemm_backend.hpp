// Injectable matrix-multiplication backends.
//
// The paper's headline usability claim is that DGEFMM replaces DGEMM with
// no other change; application code in this repository (the ISDA
// eigensolver, the LU solver) takes its multiplication kernel as a GemmFn
// so the same solver runs with either backend -- the Table 6 experiment.
#pragma once

#include <functional>

#include "blas/kernels.hpp"
#include "support/config.hpp"

namespace strassen::core {

/// A DGEMM-compatible matrix-multiplication callback.
using GemmFn = std::function<void(
    Trans transa, Trans transb, index_t m, index_t n, index_t k, double alpha,
    const double* a, index_t lda, const double* b, index_t ldb, double beta,
    double* c, index_t ldc)>;

/// Backend calling the library's DGEMM (the baseline configuration).
GemmFn gemm_backend_dgemm();

/// Backend calling DGEFMM with the default configuration and a persistent
/// shared workspace arena (repeated calls are allocation-free).
GemmFn gemm_backend_dgefmm();

/// Backend calling DGEFMM with the packing-fused schedule (Scheme::fused):
/// operand sums are formed in the GEMM pack buffers, so the shared arena is
/// only touched when a leaf falls back to the classic recursion.
GemmFn gemm_backend_dgefmm_fused();

/// Backend calling the library's DGEMM with the given micro-kernel variant
/// pinned for the duration of each call (blas::ScopedKernel). Lets a solver
/// or benchmark compare kernel variants through the same GemmFn seam the
/// other backends use. Throws std::invalid_argument from the *call* when
/// the variant is not usable on this machine (see blas::kernel_supported).
GemmFn gemm_backend_dgemm_kernel(blas::KernelArch arch);

}  // namespace strassen::core
