#include "core/dgefmm.hpp"

#include <algorithm>
#include <type_traits>

#include "blas/gemm.hpp"
#include "blas/kernels.hpp"
#include "blas/pack_operand.hpp"
#include "blas/packed_loop.hpp"
#include "core/padding.hpp"
#include "core/sgefmm.hpp"
#include "core/tuned_policy.hpp"
#include "core/winograd.hpp"
#include "core/winograd_fused.hpp"
#include "support/faultinject.hpp"

namespace strassen::core {

namespace {

int check_args(Trans transa, Trans transb, index_t m, index_t n, index_t k,
               index_t lda, index_t ldb, index_t ldc) {
  const bool ta = (transa == Trans::no || transa == Trans::transpose ||
                   transa == Trans::conj_transpose);
  const bool tb = (transb == Trans::no || transb == Trans::transpose ||
                   transb == Trans::conj_transpose);
  if (!ta) return 1;
  if (!tb) return 2;
  if (m < 0) return 3;
  if (n < 0) return 4;
  if (k < 0) return 5;
  const index_t a_rows = is_trans(transa) ? k : m;
  const index_t b_rows = is_trans(transb) ? n : k;
  if (lda < (a_rows > 0 ? a_rows : 1)) return 8;
  if (ldb < (b_rows > 0 ? b_rows : 1)) return 10;
  if (ldc < (m > 0 ? m : 1)) return 13;
  return 0;
}

// Exact peak arena elements of the configured recursion, in the element
// type's own units (the predictors count elements, so both forward to the
// same recursion walk).
template <class T>
count_t workspace_elements(index_t m, index_t n, index_t k, T beta,
                           const GefmmConfigT<T>& cfg) {
  if constexpr (std::is_same_v<T, float>) {
    return workspace_floats(m, n, k, beta, cfg);
  } else {
    return workspace_doubles(m, n, k, beta, cfg);
  }
}

template <class T>
void gefmm_view_t(T alpha, BasicView<const T> a, BasicView<const T> b, T beta,
                  BasicView<T> c, const GefmmConfigT<T>& cfg);

// Consults the caller's prepacked operand handles (cfg.packed_a/packed_b)
// for a call that reduces to one top-level packed GEMM. True when the
// streamed nest ran (bitwise identical to the plain path); false on any
// hard miss -- wrong kernel stamp, blocking, or source identity -- with C
// untouched, so the caller continues down the ordinary path. Hit/miss
// accounting is in operand blocks: a streamed call credits the blocks the
// handles replaced, a miss charges the blocks the fresh path must now pack.
template <class T>
bool try_prepacked_gemm(T alpha, BasicView<const T> a, BasicView<const T> b,
                        T beta, BasicView<T> c, const GefmmConfigT<T>& cfg) {
  if (cfg.packed_a == nullptr && cfg.packed_b == nullptr) return false;
  const index_t m = c.rows, n = c.cols, k = a.cols;
  const blas::GemmBlocking bk =
      blas::blocking_for_t<T>(blas::active_machine());
  count_t blocks = 0;
  if (cfg.packed_a != nullptr) blocks += blas::packed_a_blocks(bk, m, n, k);
  if (cfg.packed_b != nullptr) blocks += blas::packed_b_blocks(bk, n, k);
  if (blas::gemm_view_prepacked(alpha, a, b, beta, c, cfg.packed_a,
                                cfg.packed_b)) {
    if (cfg.stats != nullptr) cfg.stats->pack_hits += blocks;
    return true;
  }
  if (cfg.stats != nullptr) cfg.stats->pack_misses += blocks;
  return false;
}

// Tuned-policy routing, kept out of the driver proper: when the measured
// crossover says plain GEMM wins, it dispatches here and returns true; for
// any Strassen path it rewrites cfg (via core::resolve_tuned, the same
// resolution the workspace predictors apply) and returns false so the
// driver runs the resolved configuration through its normal acquisition
// contract. The GEMM route writes C through the library's baseline packed
// path, which needs no arena workspace.
template <class T>
bool tuned_route(T alpha, BasicView<const T> a, BasicView<const T> b, T beta,
                 BasicView<T> c, GefmmConfigT<T>& cfg) {
  const TunedPath path =
      resolve_tuned<T>(c.rows, a.cols, c.cols, beta, /*workers=*/1, cfg);
  if (cfg.stats != nullptr) cfg.stats->tuned_path = tuned_path_name(path);
  if (path != TunedPath::gemm) return false;
  if (cfg.stats != nullptr) {
    cfg.stats->kernel = blas::active_kernel_t<T>().name;
    ++cfg.stats->base_gemms;
  }
  if (try_prepacked_gemm<T>(alpha, a, b, beta, c, cfg)) return true;
  blas::gemm_view(alpha, a, b, beta, c);
  return true;
}

// The shared driver template behind dgefmm_view and sgefmm_view: pre-flight
// acquisition (arena + pack scratch) under the failure contract, then the
// no-fail dispatch into the schedule interpreters. The two public
// instantiations differ only in element type; the lint tool checks the
// acquire-before-first-C-write ordering of this single definition for both.
template <class T>
void gefmm_view_t(T alpha, BasicView<const T> a, BasicView<const T> b, T beta,
                  BasicView<T> c, const GefmmConfigT<T>& cfg) {
  if (cfg.use_tuned) {
    GefmmConfigT<T> eff = cfg;
    if (tuned_route<T>(alpha, a, b, beta, c, eff)) return;
    gefmm_view_t<T>(alpha, a, b, beta, c, eff);
    return;
  }
  // Prepacked-handle consult for the untuned single-GEMM routes: every
  // schedule interpreter reduces a degenerate or below-cutoff top-level
  // call to one gemm_view, so streaming the handles here is the same
  // arithmetic minus the packing. Needs no arena, so it precedes the
  // pre-flight. A hard miss falls through to the ordinary path.
  if (cfg.packed_a != nullptr || cfg.packed_b != nullptr) {
    const index_t m = c.rows, n = c.cols, k = a.cols;
    if (((m < 2 || k < 2 || n < 2) || cfg.cutoff.stop(m, k, n, 0)) &&
        try_prepacked_gemm<T>(alpha, a, b, beta, c, cfg)) {
      if (cfg.stats != nullptr) {
        cfg.stats->kernel = blas::active_kernel_t<T>().name;
        ++cfg.stats->base_gemms;
      }
      return;
    }
  }
  const std::size_t need = static_cast<std::size_t>(
      workspace_elements<T>(c.rows, c.cols, a.cols, beta, cfg));
  const long faults_before = faultinject::injected_total();
  // Resolve the packed-GEMM blocking and fan-out now: the fan-out decision
  // for any sub-product of this call is covered by the top-level shape
  // (sub-products are never larger), so warming below is a superset of
  // what the compute phase can touch.
  const blas::GemmBlocking bk = blas::blocking_for_t<T>(blas::active_machine());
  const int gemm_threads =
      blas::packed_gemm_threads(bk, c.rows, c.cols, a.cols);
  if (cfg.stats != nullptr) {
    cfg.stats->kernel = blas::active_kernel_t<T>().name;
    if (gemm_threads > cfg.stats->gemm_threads) {
      cfg.stats->gemm_threads = gemm_threads;
    }
  }

  // Pre-flight: every fallible acquisition happens here, before the first
  // write to C, so the failure policy can act with beta*C still intact
  // (strict leaves C untouched; fallback still sees the original C).
  ArenaT<T> local;
  ArenaT<T>* arena = nullptr;
  try {
    if (cfg.workspace == nullptr) {
      local.reserve(need);
      arena = &local;
    } else if (cfg.workspace->in_use() == 0) {
      if (cfg.workspace->capacity() < need) cfg.workspace->reserve(need);
      arena = cfg.workspace;
    } else {
      // An in-use caller arena cannot be regrown (its allocations are
      // live); the probe below rejects it now instead of letting the
      // recursion throw with C half-written.
      arena = cfg.workspace;
    }
    // Probe the exact predicted peak: proves the arena covers the whole
    // recursion (and is the arena_alloc fault-injection firing point)
    // while C is still untouched. Does not disturb peak() accounting.
    arena->probe(need);
    // The packed GEMM's per-thread scratch is the only allocation the
    // compute phase would otherwise make on a cold thread; warm it now.
    // When the GEMMs will fan out over the pool, every worker's scratch
    // must be warm too -- lazy first-touch allocation on a cold worker
    // would otherwise fire inside the no-fail region below.
    if (gemm_threads > 1) {
      blas::ensure_pack_capacity_all_workers<T>(bk);
    } else {
      blas::ensure_pack_capacity<T>(bk);
    }
  } catch (const std::exception&) {
    if (cfg.on_failure == FailurePolicy::strict) throw;
    // Graceful degradation: plain GEMM needs zero arena workspace, so
    // running out of memory costs performance, never correctness. Forced
    // serial: the degraded path must stay infallible, and the parallel
    // fan-out could hit a cold worker's scratch allocation.
    blas::ScopedGemmThreads serial_gemm(1);
    blas::gemm_view(alpha, a, b, beta, c);
    if (cfg.stats != nullptr) {
      ++cfg.stats->fallbacks;
      ++cfg.stats->base_gemms;
      cfg.stats->faults_injected +=
          faultinject::injected_total() - faults_before;
    }
    return;
  }

  // Acquisition complete: arena capacity is proven by the probe and the
  // pack scratch is warm, so the schedules below allocate nothing new.
  // Injected faults are suspended for this no-fail region; a real arena
  // overflow in it would be a sizing bug and still throws WorkspaceError.
  faultinject::ScopedSuspend nofail;

  detail::CtxT<T> ctx{&cfg, arena, cfg.stats};
  if (cfg.scheme == Scheme::fused) {
    // The fused path peels odd dimensions itself; cfg.odd applies only to
    // the classic recursion below the fusion depth.
    detail::fmm_fused(alpha, a, b, beta, c, ctx, 0);
  } else if (cfg.odd == OddStrategy::static_padding) {
    detail::pad_static(alpha, a, b, beta, c, ctx);
  } else {
    detail::fmm(alpha, a, b, beta, c, ctx, 0);
  }
  if (cfg.stats != nullptr) {
    cfg.stats->peak_workspace =
        std::max(cfg.stats->peak_workspace, arena->peak());
    cfg.stats->hugepage_bytes =
        std::max(cfg.stats->hugepage_bytes, arena->huge_advised_bytes());
    cfg.stats->faults_injected +=
        faultinject::injected_total() - faults_before;
  }
}

// GEMM-convention argument handling shared by both precisions: validate,
// route degenerate cases to the plain BLAS path, build op views, run the
// driver above.
template <class T>
int gefmm_t(Trans transa, Trans transb, index_t m, index_t n, index_t k,
            T alpha, const T* a, index_t lda, const T* b, index_t ldb, T beta,
            T* c, index_t ldc, const GefmmConfigT<T>& cfg) {
  if (const int info = check_args(transa, transb, m, n, k, lda, ldb, ldc);
      info != 0) {
    return info;
  }
  if (m == 0 || n == 0) return 0;

  // Pure scale/accumulate degenerate cases go straight to the BLAS path.
  if (k == 0 || alpha == T(0)) {
    if constexpr (std::is_same_v<T, float>) {
      blas::sgemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                  ldc);
    } else {
      blas::dgemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                  ldc);
    }
    return 0;
  }

  const BasicView<const T> av = is_trans(transa)
                                    ? make_op_view(transa, a, k, m, lda)
                                    : make_op_view(transa, a, m, k, lda);
  const BasicView<const T> bv = is_trans(transb)
                                    ? make_op_view(transb, b, n, k, ldb)
                                    : make_op_view(transb, b, k, n, ldb);
  BasicView<T> cv = make_view(c, m, n, ldc);
  gefmm_view_t<T>(alpha, av, bv, beta, cv, cfg);
  return 0;
}

}  // namespace

int dgefmm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc,
           const DgefmmConfig& cfg) {
  return gefmm_t<double>(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                         c, ldc, cfg);
}

int sgefmm(Trans transa, Trans transb, index_t m, index_t n, index_t k,
           float alpha, const float* a, index_t lda, const float* b,
           index_t ldb, float beta, float* c, index_t ldc,
           const SgefmmConfig& cfg) {
  return gefmm_t<float>(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                        c, ldc, cfg);
}

void dgefmm_view(double alpha, ConstView a, ConstView b, double beta,
                 MutView c, const DgefmmConfig& cfg) {
  gefmm_view_t<double>(alpha, a, b, beta, c, cfg);
}

void sgefmm_view(float alpha, ConstViewF a, ConstViewF b, float beta,
                 MutViewF c, const SgefmmConfig& cfg) {
  gefmm_view_t<float>(alpha, a, b, beta, c, cfg);
}

count_t dgefmm_workspace_doubles(index_t m, index_t n, index_t k, double beta,
                                 const DgefmmConfig& cfg) {
  return workspace_doubles(m, n, k, beta, cfg);
}

count_t sgefmm_workspace_floats(index_t m, index_t n, index_t k, float beta,
                                const SgefmmConfig& cfg) {
  return workspace_floats(m, n, k, beta, cfg);
}

}  // namespace strassen::core
