// Dynamic peeling for odd dimensions (Section 3.3 and eq. 9 of the paper).
//
// When any of m, k, n is odd, the last row/column is stripped so that
// Strassen's construction applies to the even-dimensioned core, and the
// stripped pieces contribute through three fix-up steps:
//   * odd k: a rank-one update  C11 += alpha * a_,k-1 * b_k-1,_  (DGER),
//   * odd n: a matrix-vector product for the last column of C     (DGEMV),
//   * odd m: a vector-matrix product for the last row of C        (DGEMV),
//   * odd m and n: a dot product for the corner element           (DDOT).
// No extra workspace is required -- the paper's key argument for peeling
// over padding. Each routine is a double/float overload pair over one
// shared implementation; the float forms dispatch to SGER/SGEMV/SDOT.
#pragma once

#include "support/config.hpp"
#include "support/matrix.hpp"

namespace strassen::core {

/// y <- alpha * A x + beta * y for a (possibly transposed) view A and
/// strided vectors. Dispatches to blas::dgemv / blas::sgemv.
void gemv_view(double alpha, ConstView a, const double* x, index_t incx,
               double beta, double* y, index_t incy);
void gemv_view(float alpha, ConstViewF a, const float* x, index_t incx,
               float beta, float* y, index_t incy);

/// Applies the peeling fix-ups for C = alpha*A*B + beta*C where the
/// (me x ke x ne) even core has already been computed into C(0:me, 0:ne)
/// (including its beta contribution). A is m x k, B is k x n, C is m x n
/// logical views; me = m or m-1, etc.
///
/// Returns the number of fix-up operations performed (0 when all dimensions
/// were already even).
int peel_fixups(double alpha, ConstView a, ConstView b, double beta, MutView c,
                index_t me, index_t ke, index_t ne);
int peel_fixups(float alpha, ConstViewF a, ConstViewF b, float beta,
                MutViewF c, index_t me, index_t ke, index_t ne);

}  // namespace strassen::core
