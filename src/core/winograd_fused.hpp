// Packing-fused Strassen schedule built on the blas::packed_gemm_multi
// skeleton (see src/blas/packed_loop.hpp and DESIGN.md section 6).
//
// The classic schedules in winograd.cpp spend every operand sum (S/T) and
// every product accumulation (U) as a separate memory pass through arena
// temporaries. The fused schedule instead expresses the top one or two
// recursion levels with Strassen's original seven-product form, where each
// product is
//
//     M = (gamma_1 A_q1 + gamma_2 A_q2) (gamma_1' B_q1 + gamma_2' B_q2),
//     C_q += +/- alpha M   for one or two quadrants of C,
//
// i.e. exactly one packed-GEMM call whose *packing* forms the operand sums
// and whose *epilogue* scatters the accumulator into the destination
// quadrants. No S/T/product temporaries exist at fused levels, so those
// levels allocate zero arena workspace. Composing the form with itself
// yields the two-level variant: 49 products with up to four packing terms
// and four destinations each -- the limits the skeleton supports.
//
// Below the fusion depth (when the cutoff still wants recursion at the
// leaf dimensions) each leaf materializes its operand combinations into
// arena temporaries and continues with the classic schedules, so deep
// problems keep their Strassen arithmetic savings.
#pragma once

#include <cassert>

#include "core/winograd.hpp"

namespace strassen::core::detail {

/// Fused counterpart of fmm: C <- alpha*A*B + beta*C with the top level(s)
/// executed as fused packed-GEMM calls. Odd dimensions are dynamically
/// peeled (cfg.odd only affects the classic recursion below the fusion).
void fmm_fused(double alpha, ConstView a, ConstView b, double beta, MutView c,
               Ctx& ctx, int depth);

/// One gamma-weighted operand combination of a fused product: at most two
/// terms at one level of fusion, four at two (the packed skeleton's
/// 4-term bound, static_asserted in verify/proofs.hpp). The parallel task
/// DAG builds depth-2 operands directly, so the capacity here is four.
struct FusedOperand {
  ConstView v[4];
  double g[4];
  int n = 0;

  void add(ConstView view, double gamma) {
    assert(n < 4);
    v[n] = view;
    g[n] = gamma;
    ++n;
  }
};

/// Computes d <- g * (sum_i ga_i A_i)(sum_j gb_j B_j) + beta * d as one
/// fused packed-GEMM call, or -- when the cutoff still wants recursion at
/// these dimensions -- by materializing the combinations into ctx.arena and
/// running the classic fmm below. This is the task granule the parallel
/// top level schedules. The arena is grown on demand when unused.
void fused_product(const FusedOperand& a, const FusedOperand& b, MutView d,
                   double g, double beta, Ctx& ctx, int depth);

/// Exact arena doubles one fused_product call allocates at peak.
count_t fused_product_workspace(index_t m, index_t k, index_t n,
                                const DgefmmConfig& cfg, int depth);

}  // namespace strassen::core::detail
