// Packing-fused Strassen schedule built on the blas::packed_gemm_multi
// skeleton (see src/blas/packed_loop.hpp and DESIGN.md section 6).
//
// The classic schedules in winograd.cpp spend every operand sum (S/T) and
// every product accumulation (U) as a separate memory pass through arena
// temporaries. The fused schedule instead expresses the top one or two
// recursion levels with Strassen's original seven-product form, where each
// product is
//
//     M = (gamma_1 A_q1 + gamma_2 A_q2) (gamma_1' B_q1 + gamma_2' B_q2),
//     C_q += +/- alpha M   for one or two quadrants of C,
//
// i.e. exactly one packed-GEMM call whose *packing* forms the operand sums
// and whose *epilogue* scatters the accumulator into the destination
// quadrants. No S/T/product temporaries exist at fused levels, so those
// levels allocate zero arena workspace. Composing the form with itself
// yields the two-level variant: 49 products with up to four packing terms
// and four destinations each -- the limits the skeleton supports.
//
// Below the fusion depth (when the cutoff still wants recursion at the
// leaf dimensions) each leaf materializes its operand combinations into
// arena temporaries and continues with the classic schedules, so deep
// problems keep their Strassen arithmetic savings.
//
// Like the classic recursion, everything is templated on the element type;
// the float instantiation drives the float pack/kernel tables of the same
// skeleton.
#pragma once

#include <cassert>

#include "core/winograd.hpp"

namespace strassen::core::detail {

/// Fused counterpart of fmm: C <- alpha*A*B + beta*C with the top level(s)
/// executed as fused packed-GEMM calls. Odd dimensions are dynamically
/// peeled (cfg.odd only affects the classic recursion below the fusion).
template <class T>
void fmm_fused(T alpha, BasicView<const T> a, BasicView<const T> b, T beta,
               BasicView<T> c, CtxT<T>& ctx, int depth);

extern template void fmm_fused<double>(double, ConstView, ConstView, double,
                                       MutView, CtxT<double>&, int);
extern template void fmm_fused<float>(float, ConstViewF, ConstViewF, float,
                                      MutViewF, CtxT<float>&, int);

/// One gamma-weighted operand combination of a fused product: at most two
/// terms at one level of fusion, four at two (the packed skeleton's
/// 4-term bound, static_asserted in verify/proofs.hpp). The parallel task
/// DAG builds depth-2 operands directly, so the capacity here is four.
template <class T>
struct FusedOperandT {
  BasicView<const T> v[4];
  T g[4];
  int n = 0;

  void add(BasicView<const T> view, T gamma) {
    assert(n < 4);
    v[n] = view;
    g[n] = gamma;
    ++n;
  }
};

using FusedOperand = FusedOperandT<double>;
using FusedOperandF = FusedOperandT<float>;

/// Computes d <- g * (sum_i ga_i A_i)(sum_j gb_j B_j) + beta * d as one
/// fused packed-GEMM call, or -- when the cutoff still wants recursion at
/// these dimensions -- by materializing the combinations into ctx.arena and
/// running the classic fmm below. This is the task granule the parallel
/// top level schedules. The arena is grown on demand when unused.
template <class T>
void fused_product(const FusedOperandT<T>& a, const FusedOperandT<T>& b,
                   BasicView<T> d, T g, T beta, CtxT<T>& ctx, int depth);

extern template void fused_product<double>(const FusedOperandT<double>&,
                                           const FusedOperandT<double>&,
                                           MutView, double, double,
                                           CtxT<double>&, int);
extern template void fused_product<float>(const FusedOperandT<float>&,
                                          const FusedOperandT<float>&,
                                          MutViewF, float, float,
                                          CtxT<float>&, int);

/// Exact arena elements one fused_product call allocates at peak. The
/// count is in elements of the configuration's precision (identical for
/// both: the recursion allocates by shape, never by byte size).
count_t fused_product_workspace(index_t m, index_t k, index_t n,
                                const DgefmmConfig& cfg, int depth);
count_t fused_product_workspace(index_t m, index_t k, index_t n,
                                const SgefmmConfig& cfg, int depth);

/// Exact arena elements the packed-panel cache slab of one fmm_fused call
/// occupies (0 when the cache is off, the leaves recurse classically, or
/// no leaf spans multiple GEMM column strips). Unlike the rest of the
/// workspace math this is element-type specific: the slab holds packed
/// micro-panels shaped by T's active kernel and blocking. fmm_fused carves
/// exactly this amount, so the workspace predictors that add it keep
/// prediction == peak.
template <class T>
count_t fused_cache_elements(index_t m, index_t k, index_t n,
                             const GefmmConfigT<T>& cfg, int depth);

extern template count_t fused_cache_elements<double>(index_t, index_t,
                                                     index_t,
                                                     const DgefmmConfig&,
                                                     int);
extern template count_t fused_cache_elements<float>(index_t, index_t, index_t,
                                                    const SgefmmConfig&, int);

}  // namespace strassen::core::detail
