#include "core/tuned_policy.hpp"

#include <atomic>
#include <cmath>
#include <cstring>

#include "blas/kernels.hpp"

namespace strassen::core {

namespace {

// Fixed ring of static slots per element type: core's allocation discipline
// forbids heap allocation, and a ring lets a reader holding yesterday's
// pointer survive a fresh install (slot reuse needs kSlots installs in
// between, and installs are rare configuration actions by contract).
constexpr unsigned kSlots = 16;

struct Registry {
  TunedPolicy slots[kSlots];
  std::atomic<unsigned> next{0};
  std::atomic<const TunedPolicy*> active{nullptr};
};

Registry g_registry_f64;
Registry g_registry_f32;

template <class T>
Registry& registry() {
  if constexpr (sizeof(T) == sizeof(float)) {
    return g_registry_f32;
  } else {
    return g_registry_f64;
  }
}

void install(Registry& r, const TunedPolicy& policy) {
  const unsigned i =
      r.next.fetch_add(1, std::memory_order_relaxed) % kSlots;  // relaxed: counter
  r.slots[i] = policy;
  // Release pairs with the consult-side acquire: a reader that sees the
  // pointer sees the fully-written slot.
  r.active.store(&r.slots[i], std::memory_order_release);
}

}  // namespace

template <class T>
void install_tuned_policy(const TunedPolicy& policy) {
  install(registry<T>(), policy);
}

template <class T>
void clear_tuned_policy() {
  registry<T>().active.store(nullptr, std::memory_order_release);
}

template <class T>
const TunedPolicy* tuned_policy() {
  const TunedPolicy* p =
      registry<T>().active.load(std::memory_order_acquire);
  if (p == nullptr) return nullptr;
  // Hard miss on kernel change: the crossovers were measured against the
  // stamped kernel's GEMM speed and say nothing about any other. An empty
  // stamp (a policy that skipped stamping) misses too.
  const char* active_name = blas::active_kernel_t<T>().name;
  if (std::strcmp(p->kernel, active_name) != 0) return nullptr;
  return p;
}

template void install_tuned_policy<double>(const TunedPolicy&);
template void install_tuned_policy<float>(const TunedPolicy&);
template void clear_tuned_policy<double>();
template void clear_tuned_policy<float>();
template const TunedPolicy* tuned_policy<double>();
template const TunedPolicy* tuned_policy<float>();

TunedPath tuned_path_for(const TunedPolicy& policy, index_t m, index_t k,
                         index_t n, int workers) {
  // Equivalent order: the cube edge of a square problem with the same
  // operation count, so one threshold covers rectangular shapes.
  const double s = std::cbrt(static_cast<double>(m) * static_cast<double>(k) *
                             static_cast<double>(n));
  if (policy.tau_fused > 0 && s <= policy.tau_fused) return TunedPath::gemm;
  if (workers > 1 && policy.tau_dag > 0 && s > policy.tau_dag) {
    return TunedPath::dag;
  }
  // Hybrid outranks the fused thresholds: once the classic recursion wins,
  // it wins for every larger size (its depth grows with the problem while
  // the fused schedules stay capped at two levels). Within that regime a
  // second measured crossover picks the recursion variant: past tau_s2 the
  // forced STRASSEN2 schedule beats the automatic hybrid (the m = 4096
  // regression this threshold exists for -- "hybrid" there was the
  // measured-worst recursion while STRASSEN2 won).
  if (policy.tau_hybrid > 0 && s > policy.tau_hybrid) {
    if (policy.tau_s2 > 0 && s > policy.tau_s2) return TunedPath::strassen2;
    return TunedPath::hybrid;
  }
  if (policy.tau_fused2 > 0 && s > policy.tau_fused2) {
    return TunedPath::fused_l2;
  }
  return TunedPath::fused_l1;
}

}  // namespace strassen::core
