#include "core/cutoff.hpp"

#include <sstream>

namespace strassen::core {

namespace {

double dbl(index_t v) { return static_cast<double>(v); }

double dmul3(index_t m, index_t k, index_t n) {
  return dbl(m) * dbl(k) * dbl(n);
}

// Eq. (13): true when recursion is allowed.
bool parameterized_recurse(const CutoffCriterion& c, index_t m, index_t k,
                           index_t n) {
  const double lhs = dmul3(m, k, n);
  const double rhs = c.tau_m * dbl(n) * dbl(k) + c.tau_k * dbl(m) * dbl(n) +
                     c.tau_n * dbl(m) * dbl(k);
  return lhs > rhs;
}

}  // namespace

bool CutoffCriterion::stop(index_t m, index_t k, index_t n, int d) const {
  switch (kind) {
    case CutoffKind::op_count:
      // Eq. (7).
      return dmul3(m, k, n) <=
             4.0 * (dbl(m) * dbl(k) + dbl(k) * dbl(n) + dbl(m) * dbl(n));
    case CutoffKind::square_simple:
      // Eq. (11).
      return dbl(m) <= tau || dbl(k) <= tau || dbl(n) <= tau;
    case CutoffKind::higham_scaled:
      // Eq. (12).
      return dmul3(m, k, n) <=
             tau * (dbl(n) * dbl(k) + dbl(m) * dbl(n) + dbl(m) * dbl(k)) /
                 3.0;
    case CutoffKind::parameterized:
      return !parameterized_recurse(*this, m, k, n);
    case CutoffKind::hybrid: {
      // Eq. (15): stop iff
      //   ( !(13) and (m<=tau or k<=tau or n<=tau) ) or
      //   ( m<=tau and k<=tau and n<=tau ).
      const bool all_small = dbl(m) <= tau && dbl(k) <= tau && dbl(n) <= tau;
      if (all_small) return true;
      const bool any_small = dbl(m) <= tau || dbl(k) <= tau || dbl(n) <= tau;
      if (!any_small) return false;  // all large: always recurse
      return !parameterized_recurse(*this, m, k, n);
    }
    case CutoffKind::fixed_depth:
      return d >= depth;
    case CutoffKind::never_recurse:
      return true;
  }
  return true;
}

CutoffCriterion CutoffCriterion::op_count() {
  CutoffCriterion c;
  c.kind = CutoffKind::op_count;
  return c;
}

CutoffCriterion CutoffCriterion::square_simple(double tau) {
  CutoffCriterion c;
  c.kind = CutoffKind::square_simple;
  c.tau = tau;
  return c;
}

CutoffCriterion CutoffCriterion::higham_scaled(double tau) {
  CutoffCriterion c;
  c.kind = CutoffKind::higham_scaled;
  c.tau = tau;
  return c;
}

CutoffCriterion CutoffCriterion::parameterized(double tau_m, double tau_k,
                                               double tau_n) {
  CutoffCriterion c;
  c.kind = CutoffKind::parameterized;
  c.tau_m = tau_m;
  c.tau_k = tau_k;
  c.tau_n = tau_n;
  return c;
}

CutoffCriterion CutoffCriterion::hybrid(double tau, double tau_m, double tau_k,
                                        double tau_n) {
  CutoffCriterion c;
  c.kind = CutoffKind::hybrid;
  c.tau = tau;
  c.tau_m = tau_m;
  c.tau_k = tau_k;
  c.tau_n = tau_n;
  return c;
}

CutoffCriterion CutoffCriterion::fixed_depth(int depth) {
  CutoffCriterion c;
  c.kind = CutoffKind::fixed_depth;
  c.depth = depth;
  return c;
}

CutoffCriterion CutoffCriterion::never_recurse() {
  CutoffCriterion c;
  c.kind = CutoffKind::never_recurse;
  return c;
}

CutoffCriterion CutoffCriterion::paper_default(blas::Machine machine) {
  switch (machine) {
    case blas::Machine::rs6000:
      return hybrid(199.0, 75.0, 125.0, 95.0);
    case blas::Machine::c90:
      return hybrid(129.0, 80.0, 45.0, 20.0);
    case blas::Machine::t3d:
      return hybrid(325.0, 125.0, 75.0, 109.0);
  }
  return hybrid(199.0, 75.0, 125.0, 95.0);
}

std::string CutoffCriterion::describe() const {
  std::ostringstream ss;
  switch (kind) {
    case CutoffKind::op_count:
      ss << "op-count (eq. 7)";
      break;
    case CutoffKind::square_simple:
      ss << "simple (eq. 11), tau=" << tau;
      break;
    case CutoffKind::higham_scaled:
      ss << "Higham-scaled (eq. 12), tau=" << tau;
      break;
    case CutoffKind::parameterized:
      ss << "parameterized (eq. 13), tau_mkn=(" << tau_m << "," << tau_k << ","
         << tau_n << ")";
      break;
    case CutoffKind::hybrid:
      ss << "hybrid (eq. 15), tau=" << tau << ", tau_mkn=(" << tau_m << ","
         << tau_k << "," << tau_n << ")";
      break;
    case CutoffKind::fixed_depth:
      ss << "fixed depth " << depth;
      break;
    case CutoffKind::never_recurse:
      ss << "never recurse (DGEMM)";
      break;
  }
  return ss.str();
}

}  // namespace strassen::core
