// Padding strategies for odd dimensions (the alternatives to dynamic
// peeling that the paper argues against; implemented for the ablation
// study and for the Douglas et al. DGEMMW comparator).
#pragma once

#include "core/winograd.hpp"

namespace strassen::core::detail {

/// Dynamic padding: when any of m, k, n is odd at this level, copies the
/// operands into zero-padded even-dimensioned workspace matrices, recurses
/// on the padded problem, and copies the valid part of the result back.
/// beta*C is carried through the padded copy of C.
template <class T>
void pad_dynamic(T alpha, BasicView<const T> a, BasicView<const T> b, T beta,
                 BasicView<T> c, CtxT<T>& ctx, int depth);

/// Static padding: pads all three dimensions up to multiples of 2^L (L =
/// the recursion depth the cutoff criterion reaches on the ceiling-halved
/// dimensions), runs the whole recursion on the padded problem, and copies
/// back. Called once from the public driver.
template <class T>
void pad_static(T alpha, BasicView<const T> a, BasicView<const T> b, T beta,
                BasicView<T> c, CtxT<T>& ctx);

extern template void pad_dynamic<double>(double, ConstView, ConstView, double,
                                         MutView, CtxT<double>&, int);
extern template void pad_dynamic<float>(float, ConstViewF, ConstViewF, float,
                                        MutViewF, CtxT<float>&, int);
extern template void pad_static<double>(double, ConstView, ConstView, double,
                                        MutView, CtxT<double>&);
extern template void pad_static<float>(float, ConstViewF, ConstViewF, float,
                                       MutViewF, CtxT<float>&);

/// Depth the cutoff criterion reaches when halving (with ceiling) from
/// (m, k, n); this is the L used by static padding.
int static_padding_depth(const CutoffCriterion& cut, index_t m, index_t k,
                         index_t n);

/// Dimensions after static padding for depth L (next multiple of 2^L).
index_t pad_up(index_t x, int levels);

}  // namespace strassen::core::detail
