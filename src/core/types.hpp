// Public configuration and statistics types for DGEFMM.
#pragma once

#include <cstddef>

#include "core/cutoff.hpp"
#include "support/arena.hpp"
#include "support/config.hpp"

namespace strassen::core {

/// Which computation schedule performs each recursion level.
enum class Scheme {
  automatic,  ///< STRASSEN1 when beta == 0, STRASSEN2 otherwise (the paper's
              ///< DGEFMM behaviour, Table 1 last row)
  strassen1,  ///< force STRASSEN1 (general-beta form uses four product
              ///< temporaries; beta == 0 form runs in C's space)
  strassen2,  ///< force the three-temporary multiply-accumulate schedule
  original,   ///< Strassen's 1969 variant (7 multiplies, 18 additions)
};

/// How odd dimensions are made even at each recursion level.
enum class OddStrategy {
  dynamic_peeling,  ///< strip the odd row/column, fix up with DGER/DGEMV
                    ///< (the paper's choice, Section 3.3)
  dynamic_padding,  ///< zero-pad by one row/column at each level (Douglas
                    ///< et al.'s choice)
  static_padding,   ///< zero-pad once at the top level to a multiple of 2^L
};

/// Execution statistics filled in by dgefmm when requested.
struct DgefmmStats {
  count_t strassen_levels = 0;   ///< recursion nodes that applied Strassen
  count_t base_gemms = 0;        ///< bottom-level DGEMM calls
  count_t peel_fixups = 0;       ///< DGER/DGEMV/DDOT fix-up operations
  count_t pad_copies = 0;        ///< padded operand copies made
  int max_depth = 0;             ///< deepest recursion level applied
  std::size_t peak_workspace = 0;  ///< arena high-water mark, in doubles

  void reset() { *this = DgefmmStats{}; }
};

/// Options controlling a dgefmm call. Default-constructed configuration
/// reproduces the paper's DGEFMM on the active machine profile.
struct DgefmmConfig {
  CutoffCriterion cutoff =
      CutoffCriterion::paper_default(blas::active_machine());
  Scheme scheme = Scheme::automatic;
  OddStrategy odd = OddStrategy::dynamic_peeling;

  /// Optional caller-provided workspace. When null, dgefmm allocates an
  /// exactly-sized arena internally. Reusing one arena across calls avoids
  /// repeated allocation in inner loops (as the benchmarks do).
  Arena* workspace = nullptr;

  /// Optional statistics sink.
  DgefmmStats* stats = nullptr;
};

}  // namespace strassen::core
