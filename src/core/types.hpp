// Public configuration and statistics types for DGEFMM.
#pragma once

#include <cstddef>

#include "core/cutoff.hpp"
#include "support/arena.hpp"
#include "support/config.hpp"

namespace strassen::blas {
template <class T>
struct PackedOperandT;
}  // namespace strassen::blas

namespace strassen::core {

/// Which computation schedule performs each recursion level.
enum class Scheme {
  automatic,  ///< STRASSEN1 when beta == 0, STRASSEN2 otherwise (the paper's
              ///< DGEFMM behaviour, Table 1 last row)
  strassen1,  ///< force STRASSEN1 (general-beta form uses four product
              ///< temporaries; beta == 0 form runs in C's space)
  strassen2,  ///< force the three-temporary multiply-accumulate schedule
  original,   ///< Strassen's 1969 variant (7 multiplies, 18 additions)
  fused,      ///< packing-fused path: the top one or two recursion levels
              ///< run as multi-destination packed-GEMM calls whose packing
              ///< forms the operand sums and whose epilogue scatters the
              ///< product into the C quadrants (Huang et al. style); the
              ///< classic automatic schedule continues below the fusion
              ///< depth. Odd dimensions are always dynamically peeled at
              ///< fused levels. The operand sums live in the GEMM pack
              ///< buffers; the only arena use at fused levels is the
              ///< optional packed-panel cache slab (GefmmConfigT::
              ///< panel_cache), which the workspace predictor counts.
};

/// Human-readable schedule name for benchmark/report headers.
constexpr const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::automatic:
      return "AUTO(S1/S2)";
    case Scheme::strassen1:
      return "STRASSEN1";
    case Scheme::strassen2:
      return "STRASSEN2";
    case Scheme::original:
      return "ORIGINAL";
    case Scheme::fused:
      return "FUSED";
  }
  return "?";
}

/// What dgefmm does when workspace acquisition fails (arena reservation,
/// buffer allocation, or a parallel task that cannot run). The decision is
/// always made *before* the first write to C, so beta semantics survive
/// either way (DESIGN.md section 7).
enum class FailurePolicy {
  strict,    ///< throw the typed error (WorkspaceError / std::bad_alloc /
             ///< TaskError) with C untouched
  fallback,  ///< degrade to the workspace-free blas::dgemm path, record it
             ///< in DgefmmStats::fallbacks, and succeed
};

/// Human-readable policy name for reports.
constexpr const char* failure_policy_name(FailurePolicy p) {
  switch (p) {
    case FailurePolicy::strict:
      return "strict";
    case FailurePolicy::fallback:
      return "fallback";
  }
  return "?";
}

/// How odd dimensions are made even at each recursion level.
enum class OddStrategy {
  dynamic_peeling,  ///< strip the odd row/column, fix up with DGER/DGEMV
                    ///< (the paper's choice, Section 3.3)
  dynamic_padding,  ///< zero-pad by one row/column at each level (Douglas
                    ///< et al.'s choice)
  static_padding,   ///< zero-pad once at the top level to a multiple of 2^L
};

/// Execution statistics filled in by dgefmm when requested.
struct DgefmmStats {
  count_t strassen_levels = 0;   ///< recursion nodes that applied Strassen
  count_t base_gemms = 0;        ///< bottom-level DGEMM calls
  count_t peel_fixups = 0;       ///< DGER/DGEMV/DDOT fix-up operations
  count_t pad_copies = 0;        ///< padded operand copies made
  count_t fused_products = 0;    ///< fused multi-destination packed-GEMM calls
  count_t fallbacks = 0;         ///< degradations to the plain DGEMM path
                                 ///< under FailurePolicy::fallback
  count_t faults_injected = 0;   ///< faults the test harness fired during
                                 ///< the call (see support/faultinject.hpp)
  int fused_depth = 0;           ///< fused levels applied at the top (0-2)
  int max_depth = 0;             ///< deepest recursion level applied
  std::size_t peak_workspace = 0;  ///< arena high-water mark, in doubles
  const char* kernel = nullptr;  ///< micro-kernel variant the packed GEMMs
                                 ///< used (blas::KernelInfo::name; static
                                 ///< storage, never freed)
  int gemm_threads = 0;          ///< largest intra-GEMM fan-out the driver
                                 ///< resolved for this call (1 = serial
                                 ///< packed loop; see
                                 ///< blas::packed_gemm_threads)
  count_t steals = 0;            ///< DAG nodes a scheduler lane executed out
                                 ///< of another lane's deque (parallel driver
                                 ///< only; the overlap work-stealing won)
  count_t dag_nodes = 0;         ///< product + combine nodes the task-DAG
                                 ///< executor ran (parallel driver only)
  int dag_lanes = 0;             ///< scheduler lanes the pre-flight planner
                                 ///< allotted (parallel driver only; lanes *
                                 ///< gemm_threads never exceeds the budget)
  const char* tuned_path = nullptr;  ///< schedule the tuned policy selected
                                     ///< (core::tuned_path_name; static
                                     ///< storage), null when the call did
                                     ///< not consult a tuned policy
  std::size_t hugepage_bytes = 0;  ///< bytes of this call's workspace arena
                                   ///< covered by huge-page advice
                                   ///< (support/memadvise.hpp); 0 when the
                                   ///< STRASSEN_HUGEPAGES switch is off or
                                   ///< the arena was caller-provided storage
                                   ///< advised elsewhere
  count_t first_touch_pages = 0;   ///< workspace pages the parallel driver
                                   ///< first-touched on their owning worker
                                   ///< before the compute phase (parallel
                                   ///< driver only)
  count_t pack_hits = 0;           ///< operand blocks streamed from a
                                   ///< prepacked handle or the per-call
                                   ///< panel cache instead of being packed
  count_t pack_misses = 0;         ///< operand blocks packed fresh while a
                                   ///< handle or cache was in play: a failed
                                   ///< consult (stamp/identity hard miss) or
                                   ///< the one-time build of a cache image.
                                   ///< Calls with no handle and no cache
                                   ///< count neither.

  void reset() { *this = DgefmmStats{}; }

  /// Accumulates another call's (or a parallel child task's) statistics
  /// into this one: counters add, depth/peak fields take the maximum.
  void merge_from(const DgefmmStats& o) {
    strassen_levels += o.strassen_levels;
    base_gemms += o.base_gemms;
    peel_fixups += o.peel_fixups;
    pad_copies += o.pad_copies;
    fused_products += o.fused_products;
    fallbacks += o.fallbacks;
    faults_injected += o.faults_injected;
    if (o.fused_depth > fused_depth) fused_depth = o.fused_depth;
    if (o.max_depth > max_depth) max_depth = o.max_depth;
    if (o.peak_workspace > peak_workspace) peak_workspace = o.peak_workspace;
    if (kernel == nullptr) kernel = o.kernel;
    if (o.gemm_threads > gemm_threads) gemm_threads = o.gemm_threads;
    steals += o.steals;
    dag_nodes += o.dag_nodes;
    if (o.dag_lanes > dag_lanes) dag_lanes = o.dag_lanes;
    if (tuned_path == nullptr) tuned_path = o.tuned_path;
    if (o.hugepage_bytes > hugepage_bytes) hugepage_bytes = o.hugepage_bytes;
    first_touch_pages += o.first_touch_pages;
    pack_hits += o.pack_hits;
    pack_misses += o.pack_misses;
  }
};

/// Options controlling a gefmm call, generic over the element type T
/// (double for dgefmm, float for sgefmm). Default-constructed configuration
/// reproduces the paper's DGEFMM on the active machine profile. Everything
/// except the workspace arena is element-type independent; the arena holds
/// T, so a float call can never draw storage typed for doubles.
template <class T>
struct GefmmConfigT {
  CutoffCriterion cutoff =
      CutoffCriterion::paper_default(blas::active_machine());
  Scheme scheme = Scheme::automatic;
  OddStrategy odd = OddStrategy::dynamic_peeling;

  /// Maximum recursion levels the fused schedule folds into single packed
  /// calls (clamped to [1, 2]; only meaningful with Scheme::fused). The
  /// driver automatically fuses fewer levels when dimensions or the cutoff
  /// do not permit the full depth.
  int fused_levels = 2;

  /// Consult the installed auto-tuned policy (core/tuned_policy.hpp) and
  /// let it override cutoff/scheme/fused_levels per call shape: plain GEMM
  /// below the measured crossover, one or two fused levels above it, the
  /// measured eq.-15 cutoffs underneath. A missing or kernel-stale policy
  /// leaves the configuration untouched (TunedPath::classic). The
  /// workspace predictors resolve the same policy, so prediction and
  /// dispatch can never disagree.
  bool use_tuned = false;

  /// Per-call packed-panel cache inside the fused schedule: when the fused
  /// leaves are packed products and their n extent spans multiple GEMM
  /// column strips, the pure single-source quadrant operands' packed images
  /// are built once in a slab carved from the arena reservation (the
  /// workspace predictor accounts for it, so prediction still equals peak)
  /// and streamed for every strip. Results are bitwise identical either
  /// way; hit/miss counts land in DgefmmStats::pack_hits/pack_misses.
  bool panel_cache = true;

  /// Optional prepacked operand handles (blas/pack_operand.hpp) for op(A) /
  /// op(B). Consulted only where a call reduces to a single top-level
  /// packed GEMM (the tuned gemm route and below-cutoff shapes -- the
  /// serving hot path); any stamp or source-identity mismatch is a hard
  /// miss that falls back to fresh packing and counts a pack miss. The
  /// handles are borrowed, never owned: they must outlive the call.
  const blas::PackedOperandT<T>* packed_a = nullptr;
  const blas::PackedOperandT<T>* packed_b = nullptr;

  /// Optional caller-provided workspace. When null, gefmm allocates an
  /// exactly-sized arena internally. Reusing one arena across calls avoids
  /// repeated allocation in inner loops (as the benchmarks do).
  ArenaT<T>* workspace = nullptr;

  /// Optional statistics sink.
  DgefmmStats* stats = nullptr;

  /// What to do when workspace acquisition fails (see FailurePolicy). The
  /// C++ API defaults to strict (typed exceptions); the C/Fortran bindings
  /// default to fallback so a drop-in DGEMM replacement never throws.
  FailurePolicy on_failure = FailurePolicy::strict;
};

using DgefmmConfig = GefmmConfigT<double>;
using SgefmmConfig = GefmmConfigT<float>;

}  // namespace strassen::core
