#include "core/gemm_backend.hpp"

#include <cassert>
#include <memory>

#include "blas/gemm.hpp"
#include "core/dgefmm.hpp"

namespace strassen::core {

GemmFn gemm_backend_dgemm() {
  return [](Trans ta, Trans tb, index_t m, index_t n, index_t k, double alpha,
            const double* a, index_t lda, const double* b, index_t ldb,
            double beta, double* c, index_t ldc) {
    blas::dgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  };
}

GemmFn gemm_backend_dgefmm() {
  auto arena = std::make_shared<Arena>();
  return [arena](Trans ta, Trans tb, index_t m, index_t n, index_t k,
                 double alpha, const double* a, index_t lda, const double* b,
                 index_t ldb, double beta, double* c, index_t ldc) {
    DgefmmConfig cfg;
    cfg.workspace = arena.get();
    [[maybe_unused]] const int info =
        dgefmm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, cfg);
    assert(info == 0);
  };
}

GemmFn gemm_backend_dgemm_kernel(blas::KernelArch arch) {
  return [arch](Trans ta, Trans tb, index_t m, index_t n, index_t k,
                double alpha, const double* a, index_t lda, const double* b,
                index_t ldb, double beta, double* c, index_t ldc) {
    blas::ScopedKernel pin(arch);
    blas::dgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  };
}

GemmFn gemm_backend_dgefmm_fused() {
  auto arena = std::make_shared<Arena>();
  return [arena](Trans ta, Trans tb, index_t m, index_t n, index_t k,
                 double alpha, const double* a, index_t lda, const double* b,
                 index_t ldb, double beta, double* c, index_t ldc) {
    DgefmmConfig cfg;
    cfg.scheme = Scheme::fused;
    cfg.workspace = arena.get();
    [[maybe_unused]] const int info =
        dgefmm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, cfg);
    assert(info == 0);
  };
}

}  // namespace strassen::core
