#include "core/peeling.hpp"

#include <cassert>
#include <type_traits>

#include "blas/level1.hpp"
#include "blas/level2.hpp"
#include "support/opcount.hpp"

namespace strassen::core {

namespace {

template <class T>
void gemv_view_t(T alpha, BasicView<const T> a, const T* x, index_t incx,
                 T beta, T* y, index_t incy) {
  assert(a.col_major() || a.row_major());
  const auto gemv = [](Trans tr, index_t m, index_t n, T al, const T* ap,
                       index_t lda, const T* xp, index_t ix, T be, T* yp,
                       index_t iy) {
    if constexpr (std::is_same_v<T, float>) {
      blas::sgemv(tr, m, n, al, ap, lda, xp, ix, be, yp, iy);
    } else {
      blas::dgemv(tr, m, n, al, ap, lda, xp, ix, be, yp, iy);
    }
  };
  if (a.col_major()) {
    gemv(Trans::no, a.rows, a.cols, alpha, a.p, a.ld_col(), x, incx, beta, y,
         incy);
  } else {
    // The view is X^T for a stored column-major X (a.cols x a.rows, leading
    // dimension a.rs); GEMV's transposed mode computes y = alpha X^T x.
    gemv(Trans::transpose, a.cols, a.rows, alpha, a.p, a.ld_row(), x, incx,
         beta, y, incy);
  }
}

template <class T>
int peel_fixups_t(T alpha, BasicView<const T> a, BasicView<const T> b,
                  T beta, BasicView<T> c, index_t me, index_t ke,
                  index_t ne) {
  const index_t m = c.rows, n = c.cols, k = a.cols;
  assert(a.rows == m && b.rows == k && b.cols == n);
  assert(me == m || me == m - 1);
  assert(ke == k || ke == k - 1);
  assert(ne == n || ne == n - 1);
  int fixups = 0;

  // Odd k: C(0:me, 0:ne) += alpha * A(:, k-1) * B(k-1, :), a rank-1 update
  // on the block that the even core already produced (so beta has been
  // applied there).
  if (ke < k && me > 0 && ne > 0) {
    if constexpr (std::is_same_v<T, float>) {
      blas::sger(me, ne, alpha, &a(0, ke), a.rs, &b(ke, 0), b.cs, c.p, c.cs);
    } else {
      blas::dger(me, ne, alpha, &a(0, ke), a.rs, &b(ke, 0), b.cs, c.p, c.cs);
    }
    ++fixups;
  }

  // Odd n: last column of C over the FULL inner dimension k (eq. 9 combines
  // A11*b12 + a12*b22 into one matrix-vector product).
  if (ne < n && me > 0) {
    gemv_view_t<T>(alpha, a.block(0, 0, me, k), &b(0, ne), b.rs, beta,
                   &c(0, ne), c.rs);
    ++fixups;
  }

  // Odd m: last row of C over the full k: c21 = alpha * a_row * B(:, 0:ne).
  if (me < m && ne > 0) {
    gemv_view_t<T>(alpha, b.block(0, 0, k, ne).transposed(), &a(me, 0), a.cs,
                   beta, &c(me, 0), c.cs);
    ++fixups;
  }

  // Odd m and n: the corner element.
  if (me < m && ne < n) {
    T dot;
    if constexpr (std::is_same_v<T, float>) {
      dot = blas::sdot(k, &a(me, 0), a.cs, &b(0, ne), b.rs);
    } else {
      dot = blas::ddot(k, &a(me, 0), a.cs, &b(0, ne), b.rs);
    }
    c(me, ne) = alpha * dot + (beta == T(0) ? T(0) : beta * c(me, ne));
    if (opcount::enabled()) {
      opcount::record_gemv(1, k);  // k multiplies + k adds, close enough
    }
    ++fixups;
  }
  return fixups;
}

}  // namespace

void gemv_view(double alpha, ConstView a, const double* x, index_t incx,
               double beta, double* y, index_t incy) {
  gemv_view_t<double>(alpha, a, x, incx, beta, y, incy);
}

void gemv_view(float alpha, ConstViewF a, const float* x, index_t incx,
               float beta, float* y, index_t incy) {
  gemv_view_t<float>(alpha, a, x, incx, beta, y, incy);
}

int peel_fixups(double alpha, ConstView a, ConstView b, double beta, MutView c,
                index_t me, index_t ke, index_t ne) {
  return peel_fixups_t<double>(alpha, a, b, beta, c, me, ke, ne);
}

int peel_fixups(float alpha, ConstViewF a, ConstViewF b, float beta,
                MutViewF c, index_t me, index_t ke, index_t ne) {
  return peel_fixups_t<float>(alpha, a, b, beta, c, me, ke, ne);
}

}  // namespace strassen::core
