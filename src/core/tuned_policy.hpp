// Consultable auto-tuned dispatch policy (the "measured crossover" layer).
//
// The paper tunes the eq.-15 hybrid cutoff once per machine (Section 4.2)
// and stores it in a parameters file; this module is the in-process home of
// that measurement, extended with the scheme crossovers the modern code
// paths need: at what equivalent order does the fused Strassen schedule
// overtake plain packed GEMM, when does a second fused level pay, when does
// the classic eq.-15 recursion (whose depth keeps growing with the problem)
// retake the lead from the level-capped fused schedules, and when does the
// task-DAG parallel schedule overtake the serial ones.
//
// Layering: core cannot depend on tuning/ (which owns measurement and file
// persistence) or parallel/ (which owns the DAG). So the policy lives here
// as a passive registry: tuning/autotune.cpp measures and installs, the
// drivers consult. A policy is stamped with the micro-kernel name it was
// measured under and is a hard miss when the stamp no longer matches the
// active dispatch -- crossovers are properties of the GEMM speed, and a
// stale τ silently mis-routing is exactly the bug this PR fixes.
//
// Concurrency: install publishes a fully-written slot with a release store
// and consult reads with an acquire load, so readers always see a complete
// policy. Installs themselves are configuration actions (autotune runs,
// test setup) and must not race gefmm calls of the same element type --
// the same contract as blas::set_active_kernel.
#pragma once

#include "core/cutoff.hpp"
#include "support/config.hpp"

namespace strassen::core {

/// The schedule the tuned policy selects for one call shape.
enum class TunedPath {
  classic,    ///< no valid policy: the untuned default dispatch
  gemm,       ///< below the fused crossover: plain packed GEMM
  fused_l1,   ///< one fused Strassen level over packed GEMM
  fused_l2,   ///< two fused levels
  hybrid,     ///< classic eq.-15 hybrid recursion (depth scales with size)
  strassen2,  ///< forced STRASSEN2 recursion: the multiply-accumulate
              ///< schedule's three temporaries stay hot where the automatic
              ///< hybrid's per-level schedule churn does not, so past
              ///< tau_s2 it is the classic recursion that actually wins
  dag,        ///< task-DAG parallel schedule (parallel driver only)
};

/// Static-storage name for stats and bench JSON.
constexpr const char* tuned_path_name(TunedPath p) {
  switch (p) {
    case TunedPath::classic:
      return "classic";
    case TunedPath::gemm:
      return "gemm";
    case TunedPath::fused_l1:
      return "fused-l1";
    case TunedPath::fused_l2:
      return "fused-l2";
    case TunedPath::hybrid:
      return "hybrid";
    case TunedPath::strassen2:
      return "strassen2";
    case TunedPath::dag:
      return "dag";
  }
  return "?";
}

/// One element type's measured dispatch policy. The scheme thresholds are
/// equivalent orders s = cbrt(m*k*n); 0 disables a threshold (tau_fused = 0
/// means "fused from the first size", tau_fused2/tau_hybrid/tau_dag = 0 mean
/// "that schedule never won in the sweep").
struct TunedPolicy {
  /// Eq.-15 hybrid cutoffs per beta case (Section 4.2's two sets), applied
  /// below the fused levels and inside DAG leaves.
  CutoffCriterion beta_zero = CutoffCriterion::hybrid(199, 75, 125, 95);
  CutoffCriterion general = beta_zero;

  double tau_fused = 0;   ///< at or below: plain GEMM beats fused
  double tau_fused2 = 0;  ///< above: two fused levels beat one
  double tau_hybrid = 0;  ///< above: classic hybrid recursion beats fused.
                          ///< The fused schedules cap at two levels; the
                          ///< eq.-15 recursion keeps splitting, so it
                          ///< retakes the lead once two levels leave base
                          ///< products above the kernel's sweet spot.
  double tau_s2 = 0;      ///< above: within the classic-recursion regime
                          ///< (past tau_hybrid), forced STRASSEN2 beats the
                          ///< automatic hybrid. 0 = never measured to win;
                          ///< files from before this threshold existed load
                          ///< as 0 and keep the old hybrid routing.
  double tau_dag = 0;     ///< above: the task-DAG beats the serial schedule
  int threads = 0;        ///< pool size tau_dag was measured with

  /// Micro-kernel stamp (blas::KernelInfo::name) the sweep ran under. A
  /// consult under any other active kernel is a hard miss.
  char kernel[48] = {};

  const CutoffCriterion& select(double beta) const {
    return beta == 0.0 ? beta_zero : general;
  }
};

/// Installs (copies) a policy for element type T and publishes it.
template <class T>
void install_tuned_policy(const TunedPolicy& policy);

/// Drops any installed policy for T (tests restore a clean slate).
template <class T>
void clear_tuned_policy();

/// The installed policy for T, or nullptr when none was installed or the
/// installed one is stamped with a kernel other than the active dispatch
/// (the hard miss). The pointer stays valid until the next install of the
/// same element type.
template <class T>
const TunedPolicy* tuned_policy();

/// The schedule the policy picks for an (m, k, n) call with `workers`
/// scheduler lanes available (pass 1 from the serial driver: the DAG path
/// needs a pool to win).
TunedPath tuned_path_for(const TunedPolicy& policy, index_t m, index_t k,
                         index_t n, int workers);

}  // namespace strassen::core

#include "core/types.hpp"

namespace strassen::core {

/// Resolves use_tuned in place: consults the policy for T, rewrites
/// cutoff/scheme/fused_levels for the selected path, and always clears
/// cfg.use_tuned so the resolved configuration re-enters the driver as an
/// ordinary explicit one. Returns the selected path (classic when no valid
/// policy is installed; the caller owns routing gemm/dag, which need no
/// recursion config at all). The driver and the workspace predictors both
/// resolve through this single definition, so the predicted arena size is
/// always the size of the schedule that actually runs.
template <class T>
TunedPath resolve_tuned(index_t m, index_t k, index_t n, T beta, int workers,
                        GefmmConfigT<T>& cfg) {
  cfg.use_tuned = false;
  const TunedPolicy* policy = tuned_policy<T>();
  if (policy == nullptr) return TunedPath::classic;
  const TunedPath path = tuned_path_for(*policy, m, k, n, workers);
  cfg.cutoff = policy->select(static_cast<double>(beta));
  if (path == TunedPath::fused_l1) {
    cfg.scheme = Scheme::fused;
    cfg.fused_levels = 1;
  } else if (path == TunedPath::fused_l2) {
    cfg.scheme = Scheme::fused;
    cfg.fused_levels = 2;
  } else if (path == TunedPath::hybrid) {
    cfg.scheme = Scheme::automatic;
  } else if (path == TunedPath::strassen2) {
    cfg.scheme = Scheme::strassen2;
  }
  return path;
}

}  // namespace strassen::core
