// Runtime cutoff criteria (Sections 2 and 3.4 of the paper).
//
// The cutoff criterion decides, at each recursion level, whether to apply
// another level of Strassen's construction or to call DGEMM. The paper
// studies:
//   (7)  the op-count criterion      mkn <= 4(mk + kn + mn)
//   (10) the square criterion        m <= tau
//   (11) the simple rectangular one  m <= tau or k <= tau or n <= tau
//        (used by Douglas et al.'s DGEMMW)
//   (12) Higham's scaled criterion   mkn <= tau (nk + mn + mk) / 3
//   (13) the parameterized form      mkn <= tau_m*nk + tau_k*mn + tau_n*mk
//   (15) the paper's hybrid: (13) arbitrates, except recursion is always
//        taken when all of m, k, n exceed tau and never when all are <= tau.
// Parameters (tau, tau_m, tau_k, tau_n) come from the empirical tuner
// (src/tuning) or from the paper's measured values (Tables 2-3).
#pragma once

#include <string>

#include "blas/machine.hpp"
#include "support/config.hpp"

namespace strassen::core {

/// Which stopping rule is applied at each recursion level.
enum class CutoffKind {
  op_count,       ///< eq. (7), the pure model criterion
  square_simple,  ///< eq. (11): any dimension <= tau (also eq. 10 for square)
  higham_scaled,  ///< eq. (12)
  parameterized,  ///< eq. (13) alone
  hybrid,         ///< eq. (15), the paper's criterion
  fixed_depth,    ///< recurse exactly `depth` levels (analysis/testing)
  never_recurse,  ///< always call DGEMM (baseline)
};

/// A fully-specified stopping rule.
struct CutoffCriterion {
  CutoffKind kind = CutoffKind::hybrid;
  double tau = 199.0;    ///< square crossover
  double tau_m = 75.0;   ///< rectangular parameters (eq. 13)
  double tau_k = 125.0;
  double tau_n = 95.0;
  int depth = 1;         ///< for fixed_depth

  /// True when recursion should STOP and DGEMM be used for (m, k, n) at
  /// recursion depth `d` (top level is d == 0).
  bool stop(index_t m, index_t k, index_t n, int d) const;

  /// Factories ----------------------------------------------------------

  static CutoffCriterion op_count();
  static CutoffCriterion square_simple(double tau);
  static CutoffCriterion higham_scaled(double tau);
  static CutoffCriterion parameterized(double tau_m, double tau_k,
                                       double tau_n);
  static CutoffCriterion hybrid(double tau, double tau_m, double tau_k,
                                double tau_n);
  static CutoffCriterion fixed_depth(int depth);
  static CutoffCriterion never_recurse();

  /// The paper's measured parameters for a machine profile (Tables 2-3):
  /// RS/6000: tau=199, (75,125,95); C90: tau=129, (80,45,20);
  /// T3D: tau=325, (125,75,109). These are the library defaults until the
  /// tuner replaces them with values measured on the actual host.
  static CutoffCriterion paper_default(blas::Machine machine);

  std::string describe() const;
};

}  // namespace strassen::core
