// Complex matrix multiplication on top of the real Strassen engine.
//
// The paper notes that Douglas et al.'s DGEMMW "also provides routines for
// multiplying complex matrices, a feature not contained in our package";
// this module closes that gap as an extension. Two routines:
//
//  * zgemm4m: the conventional 4M decomposition -- Re(C) = Ar*Br - Ai*Bi,
//    Im(C) = Ar*Bi + Ai*Br -- four real multiplies through a pluggable
//    real GEMM (used as the baseline).
//
//  * zgefmm: the 3M (Karatsuba-style) decomposition
//        T1 = Ar*Br,  T2 = Ai*Bi,  T3 = (Ar+Ai)(Br+Bi),
//        Re(C) = T1 - T2,  Im(C) = T3 - T1 - T2,
//    with the three real multiplies performed by DGEFMM. 3M is what IBM's
//    ESSL used for its complex Strassen routine; it compounds the 25%
//    multiply saving of 3M with Strassen's asymptotic saving.
//
// Both support the full ZGEMM contract (op in {N, T, C}, complex alpha and
// beta). Conjugation is applied while splitting into real/imaginary parts,
// so the real multiplies always run in plain no-transpose form.
#pragma once

#include <complex>

#include "core/types.hpp"

namespace strassen::core {

/// C <- alpha * op(A) * op(B) + beta * C over complex matrices, with the
/// three real products computed by DGEFMM under `cfg`. Returns a
/// BLAS-style info code.
[[nodiscard]] int zgefmm(Trans transa, Trans transb, index_t m, index_t n,
                         index_t k, std::complex<double> alpha,
                         const std::complex<double>* a, index_t lda,
                         const std::complex<double>* b, index_t ldb,
                         std::complex<double> beta, std::complex<double>* c,
                         index_t ldc,
                         const DgefmmConfig& cfg = DgefmmConfig{});

/// Conventional 4M complex multiply through the real DGEMM (baseline for
/// the extension bench). Same contract and return convention as zgefmm.
[[nodiscard]] int zgemm4m(Trans transa, Trans transb, index_t m, index_t n,
                          index_t k, std::complex<double> alpha,
                          const std::complex<double>* a, index_t lda,
                          const std::complex<double>* b, index_t ldb,
                          std::complex<double> beta, std::complex<double>* c,
                          index_t ldc);

/// Simple triple-loop complex reference used by the tests.
void zgemm_reference(Trans transa, Trans transb, index_t m, index_t n,
                     index_t k, std::complex<double> alpha,
                     const std::complex<double>* a, index_t lda,
                     const std::complex<double>* b, index_t ldb,
                     std::complex<double> beta, std::complex<double>* c,
                     index_t ldc);

}  // namespace strassen::core
