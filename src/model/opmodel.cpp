#include "model/opmodel.hpp"

#include <cassert>

namespace strassen::model {

count_t standard_cost(index_t m, index_t k, index_t n) {
  return 2 * static_cast<count_t>(m) * k * n - static_cast<count_t>(m) * n;
}

count_t add_cost(index_t m, index_t n) {
  return static_cast<count_t>(m) * n;
}

count_t level_add_cost(Variant v, index_t m2, index_t k2, index_t n2) {
  switch (v) {
    case Variant::winograd:
      return 4 * add_cost(m2, k2) + 4 * add_cost(k2, n2) +
             7 * add_cost(m2, n2);
    case Variant::original:
      return 5 * add_cost(m2, k2) + 5 * add_cost(k2, n2) +
             8 * add_cost(m2, n2);
  }
  return 0;
}

count_t strassen_cost(
    Variant v, index_t m, index_t k, index_t n,
    const std::function<bool(index_t, index_t, index_t, int)>& stop,
    int depth) {
  if (stop(m, k, n, depth)) {
    return standard_cost(m, k, n);
  }
  assert(m % 2 == 0 && k % 2 == 0 && n % 2 == 0 &&
         "model recursion requires even dimensions");
  const index_t m2 = m / 2, k2 = k / 2, n2 = n / 2;
  return 7 * strassen_cost(v, m2, k2, n2, stop, depth + 1) +
         level_add_cost(v, m2, k2, n2);
}

namespace {
count_t ipow(count_t base, int exp) {
  count_t r = 1;
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}
}  // namespace

count_t winograd_cost_depth(index_t m0, index_t k0, index_t n0, int d) {
  const count_t p7 = ipow(7, d);
  const count_t p4 = ipow(4, d);
  const count_t mul_term =
      p7 * (2 * static_cast<count_t>(m0) * k0 * n0 -
            static_cast<count_t>(m0) * n0);
  const count_t add_term =
      (p7 - p4) *
      (4 * static_cast<count_t>(m0) * k0 + 4 * static_cast<count_t>(k0) * n0 +
       7 * static_cast<count_t>(m0) * n0) /
      3;
  return mul_term + add_term;
}

count_t winograd_cost_square(index_t m0, int d) {
  const count_t p7 = ipow(7, d);
  const count_t p4 = ipow(4, d);
  const count_t m0sq = static_cast<count_t>(m0) * m0;
  return p7 * (2 * m0sq * m0 - m0sq) + 5 * m0sq * (p7 - p4);
}

count_t original_cost_square(index_t m0, int d) {
  const count_t p7 = ipow(7, d);
  const count_t p4 = ipow(4, d);
  const count_t m0sq = static_cast<count_t>(m0) * m0;
  return p7 * (2 * m0sq * m0 - m0sq) + 6 * m0sq * (p7 - p4);
}

double one_level_ratio_square(index_t m) {
  // (7m^3 + 11m^2) / (8m^3 - 4m^2), eq. (1).
  const double md = static_cast<double>(m);
  return (7.0 * md * md * md + 11.0 * md * md) /
         (8.0 * md * md * md - 4.0 * md * md);
}

}  // namespace strassen::model
