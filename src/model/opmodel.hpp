// Operation-count model of Section 2 of the paper.
//
// Costs are exact integer arithmetic-operation counts:
//   M(m,k,n) = 2mkn - mn   standard multiply of m x k by k x n
//   G(m,n)   = mn          matrix addition/subtraction
// and the Strassen recurrence (eq. 2)
//   W(m,k,n) = M(m,k,n)                            if cutoff
//            = 7 W(m/2,k/2,n/2) + 4G(m/2,k/2)
//              + 4G(k/2,n/2) + 7G(m/2,n/2)         otherwise (Winograd)
// with the original 1969 variant using 5/5/8 additions instead of 4/4/7.
// Closed forms (eqs. 3-5) and the Section 2 ratios are provided; the tests
// assert every numeric claim the paper makes from this model.
#pragma once

#include <functional>

#include "support/config.hpp"

namespace strassen::model {

/// Which 2x2 construction is applied at each recursion level.
enum class Variant {
  winograd,  ///< 7 multiplies, 15 additions (Paterson's variant)
  original,  ///< 7 multiplies, 18 additions (Strassen 1969)
};

/// M(m,k,n) = 2mkn - mn: operations of the standard algorithm.
count_t standard_cost(index_t m, index_t k, index_t n);

/// G(m,n) = mn: operations of one matrix addition/subtraction.
count_t add_cost(index_t m, index_t n);

/// Number of additions one recursion level spends on quadrant operands and
/// accumulations (the non-multiply term of the recurrence), for half-sizes
/// m2 = m/2 etc.
count_t level_add_cost(Variant v, index_t m2, index_t k2, index_t n2);

/// Evaluates the recurrence (eq. 2). `stop(m, k, n, depth)` returns true
/// when the standard algorithm should be used. All dimensions reached by
/// recursion must be even (the model, unlike the implementation, has no
/// odd-size handling); violations trip an assert.
count_t strassen_cost(
    Variant v, index_t m, index_t k, index_t n,
    const std::function<bool(index_t, index_t, index_t, int)>& stop,
    int depth = 0);

/// Closed form (eq. 3): cost of exactly d levels of Winograd recursion on
/// (2^d m0) x (2^d k0) by (2^d k0) x (2^d n0).
count_t winograd_cost_depth(index_t m0, index_t k0, index_t n0, int d);

/// Closed form (eq. 4): square case of eq. 3.
count_t winograd_cost_square(index_t m0, int d);

/// Closed form (eq. 5): square case for the original 1969 variant.
count_t original_cost_square(index_t m0, int d);

/// Eq. (1): ratio of (one Winograd level + standard sub-multiplies) to the
/// standard algorithm on square order-m matrices; approaches 7/8.
double one_level_ratio_square(index_t m);

}  // namespace strassen::model
