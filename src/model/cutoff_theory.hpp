// Theoretical cutoff analysis (Section 2, eqs. 6-8).
//
// Characterizes where one level of Strassen recursion beats the standard
// algorithm under the operation-count model. The practical (timed) cutoffs
// live in src/tuning; the runtime criteria live in src/core/cutoff.hpp.
#pragma once

#include "support/config.hpp"

namespace strassen::model {

/// Eq. (7): true when the standard algorithm is no more costly than one
/// level of Strassen recursion, i.e. mkn <= 4(mk + kn + mn).
bool standard_preferred(index_t m, index_t k, index_t n);

/// Negation of eq. (7): recursion strictly beneficial in the op-count model.
bool recursion_beneficial(index_t m, index_t k, index_t n);

/// The optimal square cutoff under the model: the largest m for which the
/// standard algorithm is preferred (the paper derives 12).
index_t theoretical_square_cutoff();

/// For fixed k and n, the smallest even m for which recursion is beneficial
/// (returns -1 if none exists below `limit`). Used to explore the
/// rectangular boundary, e.g. the paper's (6, 14, 86) example.
index_t min_beneficial_m(index_t k, index_t n, index_t limit = 1 << 16);

}  // namespace strassen::model
