#include "model/cutoff_theory.hpp"

namespace strassen::model {

bool standard_preferred(index_t m, index_t k, index_t n) {
  const count_t lhs = static_cast<count_t>(m) * k * n;
  const count_t rhs = 4 * (static_cast<count_t>(m) * k +
                           static_cast<count_t>(k) * n +
                           static_cast<count_t>(m) * n);
  return lhs <= rhs;
}

bool recursion_beneficial(index_t m, index_t k, index_t n) {
  return !standard_preferred(m, k, n);
}

index_t theoretical_square_cutoff() {
  // m^3 <= 12 m^2  <=>  m <= 12.
  index_t m = 1;
  while (standard_preferred(m + 1, m + 1, m + 1)) ++m;
  return m;
}

index_t min_beneficial_m(index_t k, index_t n, index_t limit) {
  for (index_t m = 2; m <= limit; m += 2) {
    if (recursion_beneficial(m, k, n)) return m;
  }
  return -1;
}

}  // namespace strassen::model
