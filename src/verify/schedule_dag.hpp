// Dependency DAG of the fused Strassen schedules, derived at compile time
// from the proved product tables in schedule_ir.hpp.
//
// The parallel executor (src/parallel/task_dag.cpp) does not hand-code its
// task graph: it reads the same verify::kFusedL1 / verify::kFusedL2 tables
// the serial fused schedule emits from, reshaped here into an explicit
// bipartite DAG
//
//     product node M_p  -->  combine node C_t   (one edge per c-term)
//
// with one product node per table entry (7 at depth 1, 49 at depth 2) and
// one combine node per C block of the quadrant grid (4 and 16). A product
// node owns its operand combinations -- the operand sums of the pebble
// game are contracted into the product, because the packing-fused leaf
// forms them while packing (or materializes them leaf-locally), so they
// never exist as schedulable state. A combine node lists every
// gamma-weighted product that lands in its C block, in ascending product
// order; the runtime applies the terms in exactly that order, which is
// what makes the parallel result bitwise independent of thread count and
// steal order.
//
// The static_asserts at the bottom prove, per table:
//   * coverage: every c-term of every product appears in exactly one
//     combine list, with the table's coefficient, and nothing else does;
//   * order: each combine list is strictly ascending in product index
//     (the fixed application order exists and is total);
//   * acyclicity: a Kahn peel over the edges retires every node (products
//     have in-degree zero; every combine's dependencies are satisfiable).
#pragma once

#include "verify/schedule_ir.hpp"

namespace strassen::verify {

/// One gamma-weighted product feeding a combine node: g * M_product.
struct DagTerm {
  signed short product = 0;
  double g = 0.0;
};

/// Bipartite task DAG of one fused product table: NP product nodes feeding
/// NB combine nodes (one per block of the C quadrant grid). Combine node t
/// depends on terms[term_begin[t] .. term_begin[t+1]).
template <int NP, int NB>
struct ScheduleDag {
  static constexpr int kProducts = NP;
  static constexpr int kBlocks = NB;
  DagTerm terms[NP * kMaxFusedTerms] = {};
  int term_begin[NB + 1] = {};
  int nterms = 0;
};

/// Derives the DAG from a product table: block t's term list collects every
/// (p, g) with an FTerm{t, g} in product p's c-list. Scanning products in
/// ascending order makes each list ascending by construction; the checks
/// below re-verify rather than assume it.
template <int NP, int NB>
constexpr ScheduleDag<NP, NB> build_dag(const FProduct* table) {
  ScheduleDag<NP, NB> d{};
  int pos = 0;
  for (int blk = 0; blk < NB; ++blk) {
    d.term_begin[blk] = pos;
    for (int p = 0; p < NP; ++p) {
      for (int e = 0; e < table[p].nc; ++e) {
        if (table[p].c[e].q == blk) {
          d.terms[pos] = DagTerm{static_cast<signed short>(p),
                                 table[p].c[e].g};
          ++pos;
        }
      }
    }
  }
  d.term_begin[NB] = pos;
  d.nterms = pos;
  return d;
}

inline constexpr auto kDagL1 = build_dag<kFusedL1Products, 4>(kFusedL1);
inline constexpr auto kDagL2 = build_dag<kFusedL2Products, 16>(kFusedL2.p);

/// Coverage + coefficient fidelity: the DAG's combine lists are exactly the
/// table's c-terms -- each (product, block) pair of the table appears once
/// with the table's gamma, the term total matches, every block combines at
/// least one product, and every product feeds at least one block (no dead
/// work in the graph).
template <int NP, int NB>
constexpr bool dag_covers_table(const ScheduleDag<NP, NB>& d,
                                const FProduct* table) {
  int expected = 0;
  for (int p = 0; p < NP; ++p) expected += table[p].nc;
  if (d.nterms != expected || d.term_begin[0] != 0 ||
      d.term_begin[NB] != d.nterms) {
    return false;
  }
  for (int p = 0; p < NP; ++p) {
    for (int e = 0; e < table[p].nc; ++e) {
      const int blk = table[p].c[e].q;
      if (blk < 0 || blk >= NB) return false;
      int hits = 0;
      for (int t = d.term_begin[blk]; t < d.term_begin[blk + 1]; ++t) {
        if (d.terms[t].product == p && d.terms[t].g == table[p].c[e].g) {
          ++hits;
        }
      }
      if (hits != 1) return false;
    }
  }
  for (int blk = 0; blk < NB; ++blk) {
    if (d.term_begin[blk + 1] <= d.term_begin[blk]) return false;
    for (int t = d.term_begin[blk] + 1; t < d.term_begin[blk + 1]; ++t) {
      if (d.terms[t].product <= d.terms[t - 1].product) return false;
    }
  }
  for (int p = 0; p < NP; ++p) {
    bool feeds = false;
    for (int t = 0; t < d.nterms; ++t) {
      if (d.terms[t].product == p) feeds = true;
    }
    if (!feeds) return false;
  }
  return true;
}

/// Kahn peel: products carry no incoming edges, so they retire first; a
/// combine retires once every term's producer has. Retiring all NP + NB
/// nodes proves the graph acyclic and every dependency satisfiable.
template <int NP, int NB>
constexpr bool dag_is_acyclic(const ScheduleDag<NP, NB>& d) {
  bool product_done[NP] = {};
  int retired = 0;
  for (int p = 0; p < NP; ++p) {
    product_done[p] = true;
    ++retired;
  }
  for (int blk = 0; blk < NB; ++blk) {
    for (int t = d.term_begin[blk]; t < d.term_begin[blk + 1]; ++t) {
      const int p = d.terms[t].product;
      if (p < 0 || p >= NP || !product_done[p]) return false;
    }
    ++retired;
  }
  return retired == NP + NB;
}

/// A total order over the NP + NB DAG nodes: position `at[i]` holds a node
/// id, with products numbered 0..NP-1 and combine node b numbered NP + b.
template <int NP, int NB>
struct NodeOrder {
  int at[NP + NB] = {};
};

/// The order the executor's fixed combine pass walks: all products first
/// (any completion order is covered because every product precedes every
/// combine here), then the combine nodes in ascending block index.
template <int NP, int NB>
constexpr NodeOrder<NP, NB> ascending_order() {
  NodeOrder<NP, NB> o{};
  for (int i = 0; i < NP + NB; ++i) o.at[i] = i;
  return o;
}

/// Lemma: `o` is a linear extension of the DAG -- a permutation of the
/// node set in which every combine node appears after every product node
/// feeding it. This is the schedule-correctness fact the serial fused
/// walk and the parallel executor's deterministic combine pass both rest
/// on: applying combines in the fixed ascending order can never read a
/// product that the order has not already placed.
template <int NP, int NB>
constexpr bool order_is_linear_extension(const ScheduleDag<NP, NB>& d,
                                         const NodeOrder<NP, NB>& o) {
  constexpr int kNodes = NP + NB;
  // Permutation check, and invert: pos[node] = position in the order.
  int pos[kNodes] = {};
  bool seen[kNodes] = {};
  for (int i = 0; i < kNodes; ++i) {
    const int node = o.at[i];
    if (node < 0 || node >= kNodes || seen[node]) return false;
    seen[node] = true;
    pos[node] = i;
  }
  // Every edge product p --> combine b respects the order.
  for (int blk = 0; blk < NB; ++blk) {
    for (int t = d.term_begin[blk]; t < d.term_begin[blk + 1]; ++t) {
      const int p = d.terms[t].product;
      if (p < 0 || p >= NP) return false;
      if (pos[p] >= pos[NP + blk]) return false;
    }
  }
  return true;
}

static_assert(dag_covers_table(kDagL1, kFusedL1),
              "depth-1 task DAG does not match the proved L1 product table");
static_assert(dag_covers_table(kDagL2, kFusedL2.p),
              "depth-2 task DAG does not match the composed L2 table");
static_assert(dag_is_acyclic(kDagL1),
              "depth-1 task DAG must be acyclic with satisfiable deps");
static_assert(dag_is_acyclic(kDagL2),
              "depth-2 task DAG must be acyclic with satisfiable deps");
static_assert(kDagL1.nterms == 12 && kDagL2.nterms == 144,
              "fused c-term totals changed; re-derive the DAG invariants");
static_assert(
    order_is_linear_extension(kDagL1,
                              ascending_order<kFusedL1Products, 4>()),
    "the fixed ascending combine order is not a linear extension of the "
    "depth-1 DAG");
static_assert(
    order_is_linear_extension(kDagL2,
                              ascending_order<kFusedL2Products, 16>()),
    "the fixed ascending combine order is not a linear extension of the "
    "depth-2 DAG");

}  // namespace strassen::verify
