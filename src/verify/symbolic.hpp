// Constexpr symbolic interpreter over a small polynomial ring.
//
// Evaluates a schedule_ir.hpp table with every matrix quadrant replaced by
// a formal variable and checks, by exact polynomial identity, that the
// schedule computes C = alpha*A*B + beta*C for the 2x2 (or, for the fused
// tables, 2^L x 2^L) block form. The ring is noncommutative in the matrix
// variables -- block products a_ij * b_jk keep their order -- and
// commutative in the scalars alpha and beta, which appear as explicit
// exponents on each monomial.
//
// Everything here is constexpr so verify/proofs.hpp can static_assert the
// results; tests/test_verify.cpp calls the same functions at run time to
// exercise the checker's rejection paths on deliberately corrupted tables.
#pragma once

#include "verify/schedule_ir.hpp"

namespace strassen::verify {

// Checker verdicts. 0 is success; anything else identifies the failure so
// a static_assert(check_schedule(s) == kOk) diagnostic pinpoints the cause.
inline constexpr int kOk = 0;
inline constexpr int kErrReadUnwritten = 1;   ///< step reads an undefined reg
inline constexpr int kErrDegreeOverflow = 2;  ///< product of two products
inline constexpr int kErrPolyOverflow = 3;    ///< monomial capacity exceeded
inline constexpr int kErrResultMismatch = 4;  ///< C != alpha*A*B + beta*C
inline constexpr int kErrBadStep = 5;         ///< malformed step encoding

/// One monomial: coef * alpha^ae * beta^be * v[0] * v[1] (matrix variables
/// in product order; nv in 0..2 since a well-formed schedule never
/// multiplies two products).
struct Mono {
  int ae = 0;
  int be = 0;
  signed char v[2] = {-1, -1};
  signed char nv = 0;
  double coef = 0.0;
};

constexpr bool same_key(const Mono& a, const Mono& b) {
  if (a.ae != b.ae || a.be != b.be || a.nv != b.nv) return false;
  for (int i = 0; i < a.nv; ++i) {
    if (a.v[i] != b.v[i]) return false;
  }
  return true;
}

/// Fixed-capacity multivariate polynomial, kept in merged form (no two
/// monomials share a key; zero-coefficient monomials are removed).
template <int Cap>
struct Poly {
  Mono m[Cap] = {};
  int n = 0;
  bool overflow = false;

  constexpr void add_mono(const Mono& mo) {
    if (mo.coef == 0.0) return;
    for (int i = 0; i < n; ++i) {
      if (same_key(m[i], mo)) {
        m[i].coef += mo.coef;
        if (m[i].coef == 0.0) {
          m[i] = m[n - 1];
          --n;
        }
        return;
      }
    }
    if (n == Cap) {
      overflow = true;
      return;
    }
    m[n] = mo;
    ++n;
  }

  /// this += scale * alpha^d_ae * beta^d_be * src.
  constexpr void axpy(double scale, int d_ae, int d_be,
                      const Poly& src) {
    if (src.overflow) overflow = true;
    for (int i = 0; i < src.n; ++i) {
      Mono mo = src.m[i];
      mo.coef *= scale;
      mo.ae += d_ae;
      mo.be += d_be;
      add_mono(mo);
    }
  }
};

/// Single formal variable as a polynomial.
template <int Cap>
constexpr Poly<Cap> make_var(int id) {
  Poly<Cap> p;
  Mono mo;
  mo.v[0] = static_cast<signed char>(id);
  mo.nv = 1;
  mo.coef = 1.0;
  p.add_mono(mo);
  return p;
}

/// Noncommutative product x * y. Fails (via *err) if any monomial product
/// would carry more than two matrix variables -- a schedule multiplying a
/// product by anything is structurally wrong, not just miscoded.
template <int Cap>
constexpr Poly<Cap> mul_poly(const Poly<Cap>& x, const Poly<Cap>& y,
                             int* err) {
  Poly<Cap> r;
  if (x.overflow || y.overflow) r.overflow = true;
  for (int i = 0; i < x.n; ++i) {
    for (int j = 0; j < y.n; ++j) {
      if (x.m[i].nv + y.m[j].nv > 2) {
        *err = kErrDegreeOverflow;
        return r;
      }
      Mono mo;
      mo.ae = x.m[i].ae + y.m[j].ae;
      mo.be = x.m[i].be + y.m[j].be;
      mo.coef = x.m[i].coef * y.m[j].coef;
      mo.nv = 0;
      for (int k = 0; k < x.m[i].nv; ++k) mo.v[mo.nv++] = x.m[i].v[k];
      for (int k = 0; k < y.m[j].nv; ++k) mo.v[mo.nv++] = y.m[j].v[k];
      r.add_mono(mo);
    }
  }
  return r;
}

/// Set equality of merged polynomials.
template <int Cap>
constexpr bool poly_equal(const Poly<Cap>& a, const Poly<Cap>& b) {
  if (a.overflow || b.overflow) return false;
  if (a.n != b.n) return false;
  for (int i = 0; i < a.n; ++i) {
    bool found = false;
    for (int j = 0; j < b.n; ++j) {
      if (same_key(a.m[i], b.m[j])) {
        found = a.m[i].coef == b.m[j].coef;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

// Variable numbering for the 2x2 classic schedules: quadrant q = 2*row+col
// of A is variable q, of B is 4+q, and the *initial* value of C quadrant q
// is 8+q (C registers start holding their variable; the schedule overwrites
// them).
inline constexpr int kVarA = 0;
inline constexpr int kVarB = 4;
inline constexpr int kVarC = 8;

inline constexpr int kClassicCap = 32;

/// Evaluates one classic 2x2 schedule symbolically and checks the result.
/// Returns kOk or the first error encountered.
constexpr int check_schedule(const Schedule& s) {
  using P = Poly<kClassicCap>;
  P reg[kNumRegs] = {};
  bool written[kNumRegs] = {};
  for (int q = 0; q < 4; ++q) {
    reg[kA11 + q] = make_var<kClassicCap>(kVarA + q);
    written[kA11 + q] = true;
    reg[kB11 + q] = make_var<kClassicCap>(kVarB + q);
    written[kB11 + q] = true;
    reg[kC11 + q] = make_var<kClassicCap>(kVarC + q);
    written[kC11 + q] = true;
  }

  for (int i = 0; i < s.nsteps; ++i) {
    const Step& st = s.steps[i];
    if (st.dst < 0 || st.dst >= kNumRegs) return kErrBadStep;
    if (st.op == Op::lin) {
      if (st.nt < 1 || st.nt > kMaxLinTerms) return kErrBadStep;
      P acc;
      for (int t = 0; t < st.nt; ++t) {
        const Term& tm = st.t[t];
        if (tm.reg < 0 || tm.reg >= kNumRegs) return kErrBadStep;
        if (!written[tm.reg]) return kErrReadUnwritten;
        acc.axpy(tm.c.v, 0, tm.c.s == Sym::beta ? 1 : 0, reg[tm.reg]);
      }
      reg[st.dst] = acc;
      written[st.dst] = true;
    } else {
      if (st.x < 0 || st.x >= kNumRegs || st.y < 0 || st.y >= kNumRegs) {
        return kErrBadStep;
      }
      if (!written[st.x] || !written[st.y]) return kErrReadUnwritten;
      int err = kOk;
      const P prod = mul_poly(reg[st.x], reg[st.y], &err);
      if (err != kOk) return err;
      P acc;
      if (st.bc.v != 0.0) {
        if (!written[st.dst]) return kErrReadUnwritten;
        acc.axpy(st.bc.v, 0, st.bc.s == Sym::beta ? 1 : 0, reg[st.dst]);
      }
      acc.axpy(st.am, 1, 0, prod);  // one alpha per recursive product
      reg[st.dst] = acc;
      written[st.dst] = true;
    }
    if (reg[st.dst].overflow) return kErrPolyOverflow;
  }

  // Expected: C_rc = alpha * (a_r0 b_0c + a_r1 b_1c) [+ beta * c_rc].
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      P want;
      for (int t = 0; t < 2; ++t) {
        int err = kOk;
        const P ab =
            mul_poly(make_var<kClassicCap>(kVarA + r * 2 + t),
                     make_var<kClassicCap>(kVarB + t * 2 + c), &err);
        if (err != kOk) return err;
        want.axpy(1.0, 1, 0, ab);
      }
      if (s.general_beta) {
        want.axpy(1.0, 0, 1, make_var<kClassicCap>(kVarC + r * 2 + c));
      }
      if (!poly_equal(reg[kC11 + r * 2 + c], want)) {
        return kErrResultMismatch;
      }
    }
  }
  return kOk;
}

// ---------------------------------------------------------------------------
// Fused product tables: the G x G block grid (G = 2 at one fused level,
// G = 4 at two). Variables: a block (r,c) is r*G+c, b blocks are offset by
// G*G, initial c blocks by 2*G*G. The fused runtime applies beta to each C
// block on its first touch and accumulates every later product, so the net
// effect to verify is C_rc = alpha * sum_t a_rt * b_tc + beta * c_rc.
// ---------------------------------------------------------------------------

inline constexpr int kFusedCap = 300;

template <int G>
constexpr int check_fused(const FProduct* prods, int np) {
  using P = Poly<kFusedCap>;
  constexpr int nb = G * G;
  P c[nb] = {};
  for (int q = 0; q < nb; ++q) {
    // beta * c_q: the first-touch scaling.
    c[q].axpy(1.0, 0, 1, make_var<kFusedCap>(2 * nb + q));
  }
  for (int i = 0; i < np; ++i) {
    const FProduct& p = prods[i];
    if (p.na < 1 || p.na > kMaxFusedTerms || p.nb < 1 ||
        p.nb > kMaxFusedTerms || p.nc < 1 || p.nc > kMaxFusedTerms) {
      return kErrBadStep;
    }
    P sa, sb;
    for (int t = 0; t < p.na; ++t) {
      if (p.a[t].q < 0 || p.a[t].q >= nb) return kErrBadStep;
      sa.axpy(p.a[t].g, 0, 0, make_var<kFusedCap>(p.a[t].q));
    }
    for (int t = 0; t < p.nb; ++t) {
      if (p.b[t].q < 0 || p.b[t].q >= nb) return kErrBadStep;
      sb.axpy(p.b[t].g, 0, 0, make_var<kFusedCap>(nb + p.b[t].q));
    }
    int err = kOk;
    const P prod = mul_poly(sa, sb, &err);
    if (err != kOk) return err;
    for (int t = 0; t < p.nc; ++t) {
      if (p.c[t].q < 0 || p.c[t].q >= nb) return kErrBadStep;
      c[p.c[t].q].axpy(p.c[t].g, 1, 0, prod);
      if (c[p.c[t].q].overflow) return kErrPolyOverflow;
    }
  }
  for (int r = 0; r < G; ++r) {
    for (int col = 0; col < G; ++col) {
      P want;
      for (int t = 0; t < G; ++t) {
        int err = kOk;
        const P ab = mul_poly(make_var<kFusedCap>(r * G + t),
                              make_var<kFusedCap>(nb + t * G + col), &err);
        if (err != kOk) return err;
        want.axpy(1.0, 1, 0, ab);
      }
      want.axpy(1.0, 0, 1, make_var<kFusedCap>(2 * nb + r * G + col));
      if (!poly_equal(c[r * G + col], want)) return kErrResultMismatch;
    }
  }
  return kOk;
}

}  // namespace strassen::verify
