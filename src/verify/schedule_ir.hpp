// Declarative schedule IR: every Strassen/Winograd schedule in the library
// as a constexpr coefficient table.
//
// The paper's correctness rests on hand-derived schedules (Figure 1's
// STRASSEN1/STRASSEN2, Strassen's 1969 form, and the fused product tables)
// and on exact workspace accounting (Table 1). Both are exactly the kind of
// artifact that silently rots under refactors, so this module makes them
// *data* instead of code: each schedule is a constexpr list of linear
// combinations, recursive products, C-accumulation terms, and temporary
// lifetimes. The tables here are
//
//  * proved at compile time -- verify/symbolic.hpp evaluates each table
//    over a small polynomial ring and static_asserts it computes
//    C = alpha*A*B + beta*C; verify/pebble.hpp replays the temporary
//    lifetimes and static_asserts the Table 1 storage claims
//    (verify/proofs.hpp holds the asserts); and
//
//  * executed at run time -- core/winograd.cpp interprets these very
//    tables (core/strassen_original.cpp and core/winograd_fused.cpp
//    likewise), and core/workspace.cpp derives its per-level workspace
//    footprints from them, so the proof and the execution cannot diverge.
//
// The IR follows Boyer-Dumas-Pernet-Zhou ("Memory efficient scheduling of
// Strassen-Winograd's matrix multiplication algorithm"), who verify such
// schedules mechanically as pebble games, and Huang et al. ("Implementing
// Strassen's Algorithm with BLIS"), who drive their fused kernels from a
// tabulated operand/epilogue coefficient table.
#pragma once

#include "support/config.hpp"

namespace strassen::verify {

// ---------------------------------------------------------------------------
// Registers
//
// A schedule operates on the 2x2 quadrant decomposition of one recursion
// level: four read-only A quadrants, four read-only B quadrants, four
// read-write C quadrants, and up to kMaxTemps arena temporaries. Quadrant
// numbering is row-major: 11, 12, 21, 22.
// ---------------------------------------------------------------------------

inline constexpr int kA11 = 0, kA12 = 1, kA21 = 2, kA22 = 3;
inline constexpr int kB11 = 4, kB12 = 5, kB21 = 6, kB22 = 7;
inline constexpr int kC11 = 8, kC12 = 9, kC21 = 10, kC22 = 11;
inline constexpr int kT0 = 12, kT1 = 13, kT2 = 14, kT3 = 15, kT4 = 16,
                     kT5 = 17;
inline constexpr int kMaxTemps = 6;
inline constexpr int kNumRegs = kT0 + kMaxTemps;

/// Logical shape of a temporary at one recursion level, in terms of the
/// half-dimensions m2 = m/2, k2 = k/2, n2 = n/2.
enum class Shape : unsigned char {
  mk,       ///< m2 x k2 (an A-operand combination)
  kn,       ///< k2 x n2 (a B-operand combination)
  mn,       ///< m2 x n2 (a product / C-shaped block)
  m_maxkn,  ///< m2 x max(k2, n2) (STRASSEN1's dual-role X buffer)
};

// ---------------------------------------------------------------------------
// Coefficients and steps
// ---------------------------------------------------------------------------

/// Symbolic factor attached to a numeric coefficient. Schedules never need
/// products of symbols beyond a single beta (alpha enters exactly once per
/// recursive product and is carried by the mul step itself).
enum class Sym : unsigned char {
  one,   ///< coefficient is v
  beta,  ///< coefficient is v * beta
};

/// A scalar coefficient v * (s == beta ? beta : 1).
struct Coef {
  double v = 0.0;
  Sym s = Sym::one;
};

/// One addend of a linear-combination step: c * reg.
struct Term {
  signed char reg = -1;
  Coef c;
};

enum class Op : unsigned char {
  lin,  ///< dst = sum of terms (terms may reference dst's old value)
  mul,  ///< dst = am * alpha * x * y + bc * dst (one recursive product)
};

inline constexpr int kMaxLinTerms = 3;

/// One step of a schedule.
struct Step {
  Op op = Op::lin;
  signed char dst = -1;
  // Op::lin payload.
  Term t[kMaxLinTerms];
  signed char nt = 0;
  // Op::mul payload: the recursive call fmm(am*alpha, x, y, bc, dst).
  signed char x = -1;
  signed char y = -1;
  double am = 1.0;
  Coef bc;
};

/// Declared lifetime of one arena temporary: the step-index window
/// [first, last] (inclusive, 0-based) in which it may be touched. The
/// pebble pass asserts the window is *tight* -- exactly first-access to
/// last-access -- so a table cannot quietly claim less (or more) overlap
/// than the steps realize.
struct TempDecl {
  signed char reg = -1;
  Shape shape = Shape::mn;
  signed char first = 0;
  signed char last = 0;
};

/// Per-level arena footprint in shape units (counts of simultaneously live
/// temporaries of each shape). This is the quantity Table 1 tabulates and
/// core/workspace.cpp's predictors consume.
struct Footprint {
  int mk = 0;
  int kn = 0;
  int mn = 0;
  int m_maxkn = 0;
};

constexpr bool operator==(const Footprint& a, const Footprint& b) {
  return a.mk == b.mk && a.kn == b.kn && a.mn == b.mn &&
         a.m_maxkn == b.m_maxkn;
}

/// Number of elements the footprint occupies at half-dimensions (m2, k2,
/// n2). Element-type independent: the count prices an arena of ANY scalar
/// type (ArenaT<double>, ArenaT<float>) because arenas allocate in elements,
/// not bytes -- the same Footprint proof backs dgefmm and sgefmm alike. The
/// historical name predates the float instantiation.
constexpr count_t footprint_doubles(const Footprint& f, index_t m2,
                                    index_t k2, index_t n2) {
  const index_t maxkn = k2 > n2 ? k2 : n2;
  return static_cast<count_t>(f.mk) * m2 * k2 +
         static_cast<count_t>(f.kn) * k2 * n2 +
         static_cast<count_t>(f.mn) * m2 * n2 +
         static_cast<count_t>(f.m_maxkn) * m2 * maxkn;
}

/// A complete tabulated schedule plus its storage claims.
struct Schedule {
  const char* name = "";
  const Step* steps = nullptr;
  int nsteps = 0;
  const TempDecl* temps = nullptr;
  int ntemps = 0;
  /// True when the schedule folds a symbolic beta*C into the result (the
  /// symbolic checker then requires C_ij = alpha*(AB)_ij + beta*C_ij; with
  /// false it requires C_ij = alpha*(AB)_ij and the initial C must vanish).
  bool general_beta = false;
  /// Claimed peak number of simultaneously live temporaries (Table 1).
  int peak_temps = 0;
  /// Claimed peak per-level arena footprint (Table 1 / workspace.cpp).
  Footprint footprint;
};

// ---------------------------------------------------------------------------
// Table construction helpers (constexpr only)
// ---------------------------------------------------------------------------

constexpr Term term(int reg, double v, Sym s = Sym::one) {
  Term t;
  t.reg = static_cast<signed char>(reg);
  t.c = Coef{v, s};
  return t;
}

constexpr Step lin(int dst, Term t0) {
  Step s;
  s.op = Op::lin;
  s.dst = static_cast<signed char>(dst);
  s.t[0] = t0;
  s.nt = 1;
  return s;
}

constexpr Step lin(int dst, Term t0, Term t1) {
  Step s = lin(dst, t0);
  s.t[1] = t1;
  s.nt = 2;
  return s;
}

constexpr Step lin(int dst, Term t0, Term t1, Term t2) {
  Step s = lin(dst, t0, t1);
  s.t[2] = t2;
  s.nt = 3;
  return s;
}

constexpr Coef num(double v) { return Coef{v, Sym::one}; }
constexpr Coef times_beta(double v = 1.0) { return Coef{v, Sym::beta}; }

constexpr Step mul(int dst, int x, int y, double am, Coef bc) {
  Step s;
  s.op = Op::mul;
  s.dst = static_cast<signed char>(dst);
  s.x = static_cast<signed char>(x);
  s.y = static_cast<signed char>(y);
  s.am = am;
  s.bc = bc;
  return s;
}

constexpr TempDecl temp(int reg, Shape shape, int first, int last) {
  return TempDecl{static_cast<signed char>(reg), shape,
                  static_cast<signed char>(first),
                  static_cast<signed char>(last)};
}

// ---------------------------------------------------------------------------
// STRASSEN1, beta == 0 (Douglas-style 22-step schedule; DESIGN.md section 1)
//
// Two temporaries: X (m2 x max(k2, n2)) holds the S operand combinations
// and later the product P1; Y (k2 x n2) holds the T combinations. The seven
// products land directly in the quadrants of C.
// ---------------------------------------------------------------------------

inline constexpr Step kStrassen1Beta0Steps[] = {
    /* 0*/ lin(kT0, term(kA11, 1), term(kA21, -1)),       // X = S3
    /* 1*/ lin(kT1, term(kB22, 1), term(kB12, -1)),       // Y = T3
    /* 2*/ mul(kC21, kT0, kT1, 1.0, num(0)),              // C21 = a*P7
    /* 3*/ lin(kT0, term(kA21, 1), term(kA22, 1)),        // X = S1
    /* 4*/ lin(kT1, term(kB12, 1), term(kB11, -1)),       // Y = T1
    /* 5*/ mul(kC22, kT0, kT1, 1.0, num(0)),              // C22 = a*P5
    /* 6*/ lin(kT0, term(kT0, 1), term(kA11, -1)),        // X = S2
    /* 7*/ lin(kT1, term(kB22, 1), term(kT1, -1)),        // Y = T2
    /* 8*/ mul(kC12, kT0, kT1, 1.0, num(0)),              // C12 = a*P6
    /* 9*/ lin(kT0, term(kA12, 1), term(kT0, -1)),        // X = S4
    /*10*/ mul(kC11, kT0, kB22, 1.0, num(0)),             // C11 = a*P3
    /*11*/ mul(kT0, kA11, kB11, 1.0, num(0)),             // X = a*P1
    /*12*/ lin(kC12, term(kC12, 1), term(kT0, 1)),        // C12 = a*U2
    /*13*/ lin(kC21, term(kC21, 1), term(kC12, 1)),       // C21 = a*U3
    /*14*/ lin(kC12, term(kC12, 1), term(kC22, 1)),       // C12 = a*U4
    /*15*/ lin(kC22, term(kC22, 1), term(kC21, 1)),       // C22 final
    /*16*/ lin(kC12, term(kC12, 1), term(kC11, 1)),       // C12 final
    /*17*/ lin(kT1, term(kT1, 1), term(kB21, -1)),        // Y = T4
    /*18*/ mul(kC11, kA22, kT1, 1.0, num(0)),             // C11 = a*P4
    /*19*/ lin(kC21, term(kC21, 1), term(kC11, -1)),      // C21 final
    /*20*/ mul(kC11, kA12, kB21, 1.0, num(0)),            // C11 = a*P2
    /*21*/ lin(kC11, term(kC11, 1), term(kT0, 1)),        // C11 final
};

inline constexpr TempDecl kStrassen1Beta0Temps[] = {
    temp(kT0, Shape::m_maxkn, 0, 21),
    temp(kT1, Shape::kn, 1, 18),
};

inline constexpr Schedule kStrassen1Beta0 = {
    "STRASSEN1/beta0",
    kStrassen1Beta0Steps,
    22,
    kStrassen1Beta0Temps,
    2,
    /*general_beta=*/false,
    /*peak_temps=*/2,
    Footprint{0, 1, 0, 1},
};

// ---------------------------------------------------------------------------
// STRASSEN1, general beta: four product temporaries Q1..Q4 per level;
// beta*C is folded in during the final accumulation passes.
// ---------------------------------------------------------------------------

inline constexpr Step kStrassen1GeneralSteps[] = {
    /* 0*/ lin(kT0, term(kA21, 1), term(kA22, 1)),              // R1 = S1
    /* 1*/ lin(kT1, term(kB12, 1), term(kB11, -1)),             // R2 = T1
    /* 2*/ mul(kT2, kT0, kT1, 1.0, num(0)),                     // Q1 = a*P5
    /* 3*/ lin(kT0, term(kT0, 1), term(kA11, -1)),              // R1 = S2
    /* 4*/ lin(kT1, term(kB22, 1), term(kT1, -1)),              // R2 = T2
    /* 5*/ mul(kT3, kT0, kT1, 1.0, num(0)),                     // Q2 = a*P6
    /* 6*/ mul(kT4, kA11, kB11, 1.0, num(0)),                   // Q3 = a*P1
    /* 7*/ lin(kT3, term(kT3, 1), term(kT4, 1)),                // Q2 = a*U2
    /* 8*/ mul(kT5, kA12, kB21, 1.0, num(0)),                   // Q4 = a*P2
    /* 9*/ lin(kT4, term(kT4, 1), term(kT5, 1)),                // Q3 = a*(P1+P2)
    /*10*/ lin(kC11, term(kT4, 1), term(kC11, 1, Sym::beta)),   // C11 final
    /*11*/ lin(kT0, term(kA12, 1), term(kT0, -1)),              // R1 = S4
    /*12*/ mul(kT4, kT0, kB22, 1.0, num(0)),                    // Q3 = a*P3
    /*13*/ lin(kC12, term(kT3, 1), term(kC12, 1, Sym::beta)),   // C12 = b*C12+U2
    /*14*/ lin(kC12, term(kC12, 1), term(kT2, 1)),              // C12 += Q1
    /*15*/ lin(kC12, term(kC12, 1), term(kT4, 1)),              // C12 final
    /*16*/ lin(kT1, term(kT1, 1), term(kB21, -1)),              // R2 = T4
    /*17*/ mul(kT4, kA22, kT1, 1.0, num(0)),                    // Q3 = a*P4
    /*18*/ lin(kT0, term(kA11, 1), term(kA21, -1)),             // R1 = S3
    /*19*/ lin(kT1, term(kB22, 1), term(kB12, -1)),             // R2 = T3
    /*20*/ mul(kT5, kT0, kT1, 1.0, num(0)),                     // Q4 = a*P7
    /*21*/ lin(kT3, term(kT3, 1), term(kT5, 1)),                // Q2 = a*U3
    /*22*/ lin(kC21, term(kT3, 1), term(kC21, 1, Sym::beta)),   // C21 = b*C21+U3
    /*23*/ lin(kC21, term(kC21, 1), term(kT4, -1)),             // C21 final
    /*24*/ lin(kC22, term(kT3, 1), term(kC22, 1, Sym::beta)),   // C22 = b*C22+U3
    /*25*/ lin(kC22, term(kC22, 1), term(kT2, 1)),              // C22 final
};

inline constexpr TempDecl kStrassen1GeneralTemps[] = {
    temp(kT0, Shape::mk, 0, 20), temp(kT1, Shape::kn, 1, 20),
    temp(kT2, Shape::mn, 2, 25), temp(kT3, Shape::mn, 5, 24),
    temp(kT4, Shape::mn, 6, 23), temp(kT5, Shape::mn, 8, 21),
};

inline constexpr Schedule kStrassen1General = {
    "STRASSEN1/general",
    kStrassen1GeneralSteps,
    26,
    kStrassen1GeneralTemps,
    6,
    /*general_beta=*/true,
    /*peak_temps=*/6,
    Footprint{1, 1, 4, 0},
};

// ---------------------------------------------------------------------------
// STRASSEN2 (Figure 1): three temporaries, recursive multiply-accumulate.
// ---------------------------------------------------------------------------

inline constexpr Step kStrassen2Steps[] = {
    /* 0*/ lin(kT1, term(kB12, 1), term(kB11, -1)),             // R2 = T1
    /* 1*/ lin(kT0, term(kA21, 1), term(kA22, 1)),              // R1 = S1
    /* 2*/ mul(kT2, kT0, kT1, 1.0, num(0)),                     // R3 = a*P5
    /* 3*/ lin(kC12, term(kT2, 1), term(kC12, 1, Sym::beta)),   // C12=b*C12+a*P5
    /* 4*/ lin(kC22, term(kT2, 1), term(kC22, 1, Sym::beta)),   // C22=b*C22+a*P5
    /* 5*/ lin(kT0, term(kT0, 1), term(kA11, -1)),              // R1 = S2
    /* 6*/ lin(kT1, term(kB22, 1), term(kT1, -1)),              // R2 = T2
    /* 7*/ mul(kT2, kA11, kB11, 1.0, num(0)),                   // R3 = a*P1
    /* 8*/ lin(kC11, term(kT2, 1), term(kC11, 1, Sym::beta)),   // C11=b*C11+a*P1
    /* 9*/ mul(kT2, kT0, kT1, 1.0, num(1)),                     // R3 = a*U2
    /*10*/ mul(kC11, kA12, kB21, 1.0, num(1)),                  // C11 final
    /*11*/ lin(kT0, term(kA12, 1), term(kT0, -1)),              // R1 = S4
    /*12*/ mul(kC12, kT0, kB22, 1.0, num(1)),                   // C12 += a*P3
    /*13*/ lin(kC12, term(kC12, 1), term(kT2, 1)),              // C12 final
    /*14*/ lin(kT1, term(kT1, 1), term(kB21, -1)),              // R2 = T4
    /*15*/ mul(kC21, kA22, kT1, -1.0, times_beta()),            // C21=b*C21-a*P4
    /*16*/ lin(kT0, term(kA11, 1), term(kA21, -1)),             // R1 = S3
    /*17*/ lin(kT1, term(kB22, 1), term(kB12, -1)),             // R2 = T3
    /*18*/ mul(kT2, kT0, kT1, 1.0, num(1)),                     // R3 = a*U3
    /*19*/ lin(kC21, term(kC21, 1), term(kT2, 1)),              // C21 final
    /*20*/ lin(kC22, term(kC22, 1), term(kT2, 1)),              // C22 final
};

inline constexpr TempDecl kStrassen2Temps[] = {
    temp(kT0, Shape::mk, 1, 18),
    temp(kT1, Shape::kn, 0, 18),
    temp(kT2, Shape::mn, 2, 20),
};

inline constexpr Schedule kStrassen2 = {
    "STRASSEN2",
    kStrassen2Steps,
    21,
    kStrassen2Temps,
    3,
    /*general_beta=*/true,
    /*peak_temps=*/3,
    Footprint{1, 1, 1, 0},
};

// ---------------------------------------------------------------------------
// Strassen's 1969 construction, beta == 0 core (the general-beta wrapper in
// core/strassen_original.cpp adds one full-size C temporary around it).
// ---------------------------------------------------------------------------

inline constexpr Step kOriginalBeta0Steps[] = {
    /* 0*/ lin(kT0, term(kA11, 1), term(kA22, 1)),
    /* 1*/ lin(kT1, term(kB11, 1), term(kB22, 1)),
    /* 2*/ mul(kT2, kT0, kT1, 1.0, num(0)),           // P = a*P1
    /* 3*/ lin(kC11, term(kT2, 1)),                   // C11 = a*P1
    /* 4*/ lin(kC22, term(kT2, 1)),                   // C22 = a*P1
    /* 5*/ lin(kT0, term(kA21, 1), term(kA22, 1)),
    /* 6*/ mul(kC21, kT0, kB11, 1.0, num(0)),         // C21 = a*P2
    /* 7*/ lin(kC22, term(kC22, 1), term(kC21, -1)),  // C22 -= a*P2
    /* 8*/ lin(kT1, term(kB12, 1), term(kB22, -1)),
    /* 9*/ mul(kC12, kA11, kT1, 1.0, num(0)),         // C12 = a*P3
    /*10*/ lin(kC22, term(kC22, 1), term(kC12, 1)),   // C22 += a*P3
    /*11*/ lin(kT1, term(kB21, 1), term(kB11, -1)),
    /*12*/ mul(kT2, kA22, kT1, 1.0, num(0)),          // P = a*P4
    /*13*/ lin(kC11, term(kC11, 1), term(kT2, 1)),
    /*14*/ lin(kC21, term(kC21, 1), term(kT2, 1)),
    /*15*/ lin(kT0, term(kA11, 1), term(kA12, 1)),
    /*16*/ mul(kT2, kT0, kB22, 1.0, num(0)),          // P = a*P5
    /*17*/ lin(kC11, term(kC11, 1), term(kT2, -1)),
    /*18*/ lin(kC12, term(kC12, 1), term(kT2, 1)),
    /*19*/ lin(kT0, term(kA21, 1), term(kA11, -1)),
    /*20*/ lin(kT1, term(kB11, 1), term(kB12, 1)),
    /*21*/ mul(kT2, kT0, kT1, 1.0, num(0)),           // P = a*P6
    /*22*/ lin(kC22, term(kC22, 1), term(kT2, 1)),
    /*23*/ lin(kT0, term(kA12, 1), term(kA22, -1)),
    /*24*/ lin(kT1, term(kB21, 1), term(kB22, 1)),
    /*25*/ mul(kT2, kT0, kT1, 1.0, num(0)),           // P = a*P7
    /*26*/ lin(kC11, term(kC11, 1), term(kT2, 1)),
};

inline constexpr TempDecl kOriginalBeta0Temps[] = {
    temp(kT0, Shape::mk, 0, 25),
    temp(kT1, Shape::kn, 1, 25),
    temp(kT2, Shape::mn, 2, 26),
};

inline constexpr Schedule kOriginalBeta0 = {
    "ORIGINAL/beta0",
    kOriginalBeta0Steps,
    27,
    kOriginalBeta0Temps,
    3,
    /*general_beta=*/false,
    /*peak_temps=*/3,
    Footprint{1, 1, 1, 0},
};

/// All four classic (2x2, one-level) schedule tables, for iteration in
/// tests and tools.
inline constexpr const Schedule* kAllSchedules[] = {
    &kStrassen1Beta0, &kStrassen1General, &kStrassen2, &kOriginalBeta0};

// ---------------------------------------------------------------------------
// Fused product tables (core/winograd_fused.cpp)
//
// Strassen's original construction, written as per-product coefficient
// lists over quadrant indices (the variant whose products each read at most
// two quadrants per operand and write at most two quadrants of C -- the
// property the 2-term/2-destination packed fusion requires):
//
//   M1 = (A11+A22)(B11+B22)   C11 += M1, C22 += M1
//   M2 = (A21+A22) B11        C21 += M2, C22 -= M2
//   M3 =  A11     (B12-B22)   C12 += M3, C22 += M3
//   M4 =  A22     (B21-B11)   C11 += M4, C21 += M4
//   M5 = (A11+A12) B22        C11 -= M5, C12 += M5
//   M6 = (A21-A11)(B11+B12)   C22 += M6
//   M7 = (A12-A22)(B21+B22)   C11 += M7
//
// At fusion level 1 the quadrant index q addresses the 2x2 grid (q = 2r+c);
// the level-2 table composes the level-1 table with itself onto a 4x4 block
// grid (index 4r+c). Fused levels allocate no temporaries at all: operand
// sums are formed in the pack buffers and accumulations live in C.
// ---------------------------------------------------------------------------

/// One addend of a fused operand/destination combination: g * block(q).
struct FTerm {
  signed char q = 0;
  double g = 0.0;
};

inline constexpr int kMaxFusedTerms = 4;

/// One fused product: (sum of a) * (sum of b) scattered into the c blocks.
struct FProduct {
  FTerm a[kMaxFusedTerms];
  signed char na = 0;
  FTerm b[kMaxFusedTerms];
  signed char nb = 0;
  FTerm c[kMaxFusedTerms];
  signed char nc = 0;
};

inline constexpr FProduct kFusedL1[7] = {
    {{{0, 1.0}, {3, 1.0}}, 2, {{0, 1.0}, {3, 1.0}}, 2, {{0, 1.0}, {3, 1.0}}, 2},
    {{{2, 1.0}, {3, 1.0}}, 2, {{0, 1.0}, {}}, 1, {{2, 1.0}, {3, -1.0}}, 2},
    {{{0, 1.0}, {}}, 1, {{1, 1.0}, {3, -1.0}}, 2, {{1, 1.0}, {3, 1.0}}, 2},
    {{{3, 1.0}, {}}, 1, {{2, 1.0}, {0, -1.0}}, 2, {{0, 1.0}, {2, 1.0}}, 2},
    {{{0, 1.0}, {1, 1.0}}, 2, {{3, 1.0}, {}}, 1, {{0, -1.0}, {1, 1.0}}, 2},
    {{{2, 1.0}, {0, -1.0}}, 2, {{0, 1.0}, {1, 1.0}}, 2, {{3, 1.0}, {}}, 1},
    {{{1, 1.0}, {3, -1.0}}, 2, {{2, 1.0}, {3, 1.0}}, 2, {{0, 1.0}, {}}, 1},
};

inline constexpr int kFusedL1Products = 7;
inline constexpr int kFusedL2Products = 49;

/// Quadrant composition onto the 4x4 grid: outer quadrant qo selects a 2x2
/// sub-grid of blocks, inner quadrant qi a block within it.
constexpr signed char compose_quadrant(int qo, int qi) {
  const int row = (qo >> 1) * 2 + (qi >> 1);
  const int col = (qo & 1) * 2 + (qi & 1);
  return static_cast<signed char>(row * 4 + col);
}

/// Substitutes the inner product spec into every term of the outer one --
/// exactly the expansion core/winograd_fused.cpp's emit() performs on views
/// at run time (inner spec entries major, outer terms minor).
constexpr FProduct compose(const FProduct& o, const FProduct& i) {
  FProduct r{};
  for (int e = 0; e < i.na; ++e) {
    for (int t = 0; t < o.na; ++t) {
      r.a[r.na] = FTerm{compose_quadrant(o.a[t].q, i.a[e].q),
                        o.a[t].g * i.a[e].g};
      ++r.na;
    }
  }
  for (int e = 0; e < i.nb; ++e) {
    for (int t = 0; t < o.nb; ++t) {
      r.b[r.nb] = FTerm{compose_quadrant(o.b[t].q, i.b[e].q),
                        o.b[t].g * i.b[e].g};
      ++r.nb;
    }
  }
  for (int e = 0; e < i.nc; ++e) {
    for (int t = 0; t < o.nc; ++t) {
      r.c[r.nc] = FTerm{compose_quadrant(o.c[t].q, i.c[e].q),
                        o.c[t].g * i.c[e].g};
      ++r.nc;
    }
  }
  return r;
}

struct FusedL2Table {
  FProduct p[kFusedL2Products];
};

/// The 49-product level-2 table: the level-1 table composed with itself, in
/// the order the runtime expansion visits products (outer index major).
constexpr FusedL2Table make_fused_l2() {
  FusedL2Table t{};
  int n = 0;
  for (int o = 0; o < kFusedL1Products; ++o) {
    for (int i = 0; i < kFusedL1Products; ++i) {
      t.p[n] = compose(kFusedL1[o], kFusedL1[i]);
      ++n;
    }
  }
  return t;
}

inline constexpr FusedL2Table kFusedL2 = make_fused_l2();

/// Largest operand/destination term count over a fused product table (the
/// packed-GEMM skeleton bounds this by blas::kPackMaxTerms/kPackMaxDests).
constexpr int max_fused_terms(const FProduct* p, int np) {
  int mx = 0;
  for (int i = 0; i < np; ++i) {
    if (p[i].na > mx) mx = p[i].na;
    if (p[i].nb > mx) mx = p[i].nb;
    if (p[i].nc > mx) mx = p[i].nc;
  }
  return mx;
}

}  // namespace strassen::verify
