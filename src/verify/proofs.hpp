// Compile-time proofs for every schedule table in the library.
//
// Including this header is the proof: if any static_assert below fails the
// translation unit does not compile. core/winograd.cpp,
// core/winograd_fused.cpp, core/strassen_original.cpp, and
// core/workspace.cpp all include it, so the code that *executes* the tables
// (and the workspace predictors that charge for them) cannot build against
// an unproved schedule.
//
// What is proved:
//  * Algebra: each classic 2x2 schedule computes C = alpha*A*B (+ beta*C
//    for the general_beta tables) as an exact polynomial identity over the
//    noncommutative block ring (symbolic.hpp).
//  * Storage (Table 1): each schedule's declared temporary lifetimes are
//    tight, and the peak number of simultaneously live temporaries and
//    their per-shape footprint match the Schedule's claims -- the numbers
//    core/workspace.cpp charges per recursion level (pebble.hpp).
//  * Fused tables: the 7-product level-1 table and the composed 49-product
//    level-2 table each compute C = alpha*A*B + beta*C over their block
//    grids, use no temporaries at all, and respect the packed-GEMM
//    skeleton's 4-term/4-destination bound.
//  * Task DAG (schedule_dag.hpp, asserted there): the parallel executor's
//    dependency graph is derived from these same tables, covers every
//    c-term exactly once with the proved coefficient, and is acyclic.
#pragma once

#include "verify/pebble.hpp"
#include "verify/schedule_dag.hpp"
#include "verify/schedule_ir.hpp"
#include "verify/symbolic.hpp"

namespace strassen::verify {

// --- Algebraic correctness: C = alpha*A*B + beta*C -------------------------

static_assert(check_schedule(kStrassen1Beta0) == kOk,
              "STRASSEN1 (beta==0) schedule does not compute C = alpha*A*B");
static_assert(check_schedule(kStrassen1General) == kOk,
              "STRASSEN1 (general beta) schedule does not compute "
              "C = alpha*A*B + beta*C");
static_assert(check_schedule(kStrassen2) == kOk,
              "STRASSEN2 schedule does not compute C = alpha*A*B + beta*C");
static_assert(check_schedule(kOriginalBeta0) == kOk,
              "original Strassen schedule does not compute C = alpha*A*B");

// --- Table 1 storage claims ------------------------------------------------

static_assert(check_lifetimes(kStrassen1Beta0) == kOk,
              "STRASSEN1 (beta==0) temporary lifetimes are not tight or do "
              "not peak at 2 temporaries");
static_assert(kStrassen1Beta0.peak_temps == 2,
              "Table 1: STRASSEN1 uses two temporaries per level");
static_assert(check_lifetimes(kStrassen1General) == kOk,
              "STRASSEN1 (general beta) temporary lifetimes are not tight "
              "or do not match the claimed footprint");
static_assert(kStrassen1General.peak_temps == 6,
              "general-beta STRASSEN1 uses R1, R2 and four product "
              "temporaries per level");
static_assert(check_lifetimes(kStrassen2) == kOk,
              "STRASSEN2 temporary lifetimes are not tight or do not peak "
              "at 3 temporaries");
static_assert(kStrassen2.peak_temps == 3,
              "Table 1: STRASSEN2 uses three temporaries per level");
static_assert(check_lifetimes(kOriginalBeta0) == kOk,
              "original-Strassen temporary lifetimes are not tight or do "
              "not peak at 3 temporaries");
static_assert(kOriginalBeta0.peak_temps == 3,
              "original Strassen uses three temporaries per level");

// --- Fused product tables --------------------------------------------------

static_assert(check_fused<2>(kFusedL1, kFusedL1Products) == kOk,
              "fused level-1 (7-product) table does not compute "
              "C = alpha*A*B + beta*C");
static_assert(check_fused<4>(kFusedL2.p, kFusedL2Products) == kOk,
              "fused level-2 (49-product) table does not compute "
              "C = alpha*A*B + beta*C");
static_assert(fused_peak_temps(kFusedL1, kFusedL1Products, 2) == 0,
              "fused level 1 must use zero temporaries");
static_assert(fused_peak_temps(kFusedL2.p, kFusedL2Products, 4) == 0,
              "fused level 2 must use zero temporaries");
static_assert(max_fused_terms(kFusedL1, kFusedL1Products) <= 2,
              "level-1 fused products read/write at most two blocks per "
              "operand");
static_assert(max_fused_terms(kFusedL2.p, kFusedL2Products) <= 4,
              "level-2 fused products must fit the packed-GEMM skeleton's "
              "4-term/4-destination bound");

}  // namespace strassen::verify
