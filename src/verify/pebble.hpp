// Constexpr pebble-game pass over schedule temporary lifetimes.
//
// Boyer-Dumas-Pernet-Zhou analyse Strassen-Winograd schedules as pebble
// games: each temporary is a pebble placed at its first write and lifted
// after its last read, and the schedule's extra storage is the peak number
// of simultaneously placed pebbles. This pass replays a schedule_ir.hpp
// table and checks that
//
//  * every temporary register a step touches has a TempDecl,
//  * each declared lifetime window [first, last] is *tight* -- exactly the
//    first-access .. last-access step range, so a table cannot claim more
//    (or less) overlap than the steps realize,
//  * the peak number of simultaneously live temporaries equals the
//    schedule's Table 1 claim (2 for STRASSEN1 with beta == 0, 3 for
//    STRASSEN2, 3 for the original form, 6 for general-beta STRASSEN1),
//  * the peak live footprint *by shape* equals the Schedule::footprint that
//    core/workspace.cpp's ws_* predictors charge per level.
//
// Fused levels have no schedule table here because they allocate no
// temporaries at all; verify/proofs.hpp asserts that claim structurally
// (every fused product reads operand quadrants and writes C quadrants
// only), which is the "0 temporaries at fused levels" row of the storage
// accounting.
#pragma once

#include "verify/symbolic.hpp"

namespace strassen::verify {

inline constexpr int kErrNoTempDecl = 10;        ///< temp reg without decl
inline constexpr int kErrLifetimeFirst = 11;     ///< declared first != actual
inline constexpr int kErrLifetimeLast = 12;      ///< declared last != actual
inline constexpr int kErrPeakTempsMismatch = 13; ///< peak live != peak_temps
inline constexpr int kErrFootprintMismatch = 14; ///< peak shapes != footprint
inline constexpr int kErrTempUnused = 15;        ///< decl never touched

namespace detail {

/// Records step index `i` as an access of register `reg` if it is a temp.
constexpr void note_access(int reg, int i, int first[kMaxTemps],
                           int last[kMaxTemps]) {
  if (reg < kT0 || reg >= kT0 + kMaxTemps) return;
  const int t = reg - kT0;
  if (first[t] < 0) first[t] = i;
  last[t] = i;
}

}  // namespace detail

/// Replays the schedule's temporary accesses against its TempDecl table.
/// Returns kOk or the first pebble-game violation.
constexpr int check_lifetimes(const Schedule& s) {
  int first[kMaxTemps] = {-1, -1, -1, -1, -1, -1};
  int last[kMaxTemps] = {-1, -1, -1, -1, -1, -1};
  for (int i = 0; i < s.nsteps; ++i) {
    const Step& st = s.steps[i];
    detail::note_access(st.dst, i, first, last);
    if (st.op == Op::lin) {
      for (int t = 0; t < st.nt; ++t) {
        detail::note_access(st.t[t].reg, i, first, last);
      }
    } else {
      detail::note_access(st.x, i, first, last);
      detail::note_access(st.y, i, first, last);
    }
  }

  // Every touched temp must be declared, with a tight window; every decl
  // must be touched.
  bool declared[kMaxTemps] = {};
  for (int d = 0; d < s.ntemps; ++d) {
    const TempDecl& td = s.temps[d];
    const int t = td.reg - kT0;
    if (t < 0 || t >= kMaxTemps) return kErrNoTempDecl;
    declared[t] = true;
    if (first[t] < 0) return kErrTempUnused;
    if (first[t] != td.first) return kErrLifetimeFirst;
    if (last[t] != td.last) return kErrLifetimeLast;
  }
  for (int t = 0; t < kMaxTemps; ++t) {
    if (first[t] >= 0 && !declared[t]) return kErrNoTempDecl;
  }

  // Peak simultaneously-live count and per-shape footprint over all steps.
  int peak = 0;
  Footprint peak_fp;
  for (int i = 0; i < s.nsteps; ++i) {
    int live = 0;
    Footprint fp;
    for (int d = 0; d < s.ntemps; ++d) {
      const TempDecl& td = s.temps[d];
      if (i < td.first || i > td.last) continue;
      ++live;
      switch (td.shape) {
        case Shape::mk: ++fp.mk; break;
        case Shape::kn: ++fp.kn; break;
        case Shape::mn: ++fp.mn; break;
        case Shape::m_maxkn: ++fp.m_maxkn; break;
      }
    }
    if (live > peak) peak = live;
    if (fp.mk > peak_fp.mk) peak_fp.mk = fp.mk;
    if (fp.kn > peak_fp.kn) peak_fp.kn = fp.kn;
    if (fp.mn > peak_fp.mn) peak_fp.mn = fp.mn;
    if (fp.m_maxkn > peak_fp.m_maxkn) peak_fp.m_maxkn = fp.m_maxkn;
  }
  if (peak != s.peak_temps) return kErrPeakTempsMismatch;
  if (!(peak_fp == s.footprint)) return kErrFootprintMismatch;
  return kOk;
}

/// Structural "zero temporaries at fused levels": every operand term of a
/// fused product addresses a quadrant of A or B and every destination a
/// quadrant of C -- there is nowhere for a temporary to hide. Returns the
/// peak temp count, i.e. always 0 for a well-formed table (bad indices are
/// reported by check_fused).
constexpr int fused_peak_temps(const FProduct* prods, int np, int grid) {
  const int nb = grid * grid;
  for (int i = 0; i < np; ++i) {
    for (int t = 0; t < prods[i].na; ++t) {
      if (prods[i].a[t].q < 0 || prods[i].a[t].q >= nb) return -1;
    }
    for (int t = 0; t < prods[i].nb; ++t) {
      if (prods[i].b[t].q < 0 || prods[i].b[t].q >= nb) return -1;
    }
    for (int t = 0; t < prods[i].nc; ++t) {
      if (prods[i].c[t].q < 0 || prods[i].c[t].q >= nb) return -1;
    }
  }
  return 0;
}

}  // namespace strassen::verify
