#!/usr/bin/env bash
# Static-verification gate (DESIGN.md section 8). Three stages:
#
#   1. hardened warnings-as-errors build (`lint` preset: -Wall -Wextra
#      -Wshadow -Wconversion -Wdouble-promotion -Werror) -- compiling the
#      library also evaluates every schedule proof in verify/proofs.hpp,
#      so a build that links *is* the compile-time proof -- then the
#      `verify`-labelled ctest suite (runtime checker negative tests);
#   2. strassen_lint over src/ (project invariants: allocation discipline,
#      no-fail regions, acquire-before-first-C-write, [[nodiscard]]),
#      preceded by a self-test on a seeded violation so a silently broken
#      linter cannot pass the gate;
#   3. clang-tidy over the compile database, label-filtered to the checks
#      in .clang-tidy -- skipped with a notice when clang-tidy is not
#      installed (the toolchain image ships GCC only).
#
# Usage: scripts/lint.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== lint: hardened -Werror build =="
cmake --preset lint
cmake --build --preset lint -j "${jobs}"
ctest --preset lint -j "${jobs}" "$@"

echo "== lint: strassen_lint self-test (seeded violation) =="
seed_dir=$(mktemp -d)
trap 'rm -rf "${seed_dir}"' EXIT
cat > "${seed_dir}/seeded.cpp" <<'EOF'
#include <cstddef>
struct Arena { double* alloc(std::size_t); };
struct ScopedSuspend {};
void violate(Arena& arena) {
  ScopedSuspend nofail;
  double* p = arena.alloc(16);  // allocation inside a no-fail region
  (void)p;
}
EOF
if ./build-lint/tools/strassen_lint "${seed_dir}" > /dev/null; then
  echo "error: strassen_lint passed a seeded violation; the linter is broken"
  exit 1
fi
echo "seeded violation rejected, linter is live"

echo "== lint: strassen_lint src/ =="
./build-lint/tools/strassen_lint src

if command -v clang-tidy > /dev/null 2>&1; then
  echo "== lint: clang-tidy =="
  mapfile -t tidy_sources < <(git ls-files 'src/*.cpp')
  clang-tidy -p build-lint --quiet "${tidy_sources[@]}"
else
  echo "== lint: clang-tidy not installed; skipped (GCC-only toolchain) =="
fi

echo "Lint stage passed."
