#!/usr/bin/env bash
# Static-verification gate (DESIGN.md section 8). Three stages:
#
#   1. hardened warnings-as-errors build (`lint` preset: -Wall -Wextra
#      -Wshadow -Wconversion -Wdouble-promotion -Werror) -- compiling the
#      library also evaluates every schedule proof in verify/proofs.hpp,
#      so a build that links *is* the compile-time proof -- then the
#      `verify`- and `lint`-labelled ctest suites (runtime checker negative
#      tests, and the linter's own fixture corpus);
#   2. strassen_lint over src/ and tools/ (rules 1-8: allocation
#      discipline, no-fail regions, acquire-before-first-C-write,
#      [[nodiscard]], relaxed-atomic justifications, CV discipline, lock
#      discipline, blocking-call ban -- tools/lint/lint.hpp documents the
#      full list), preceded by a self-test on seeded violations so a
#      silently broken linter cannot pass the gate. Findings are archived
#      as JSON so a failing gate points at a replayable artifact.
#   3. clang-tidy over the compile database, label-filtered to the checks
#      in .clang-tidy -- skipped with a notice when clang-tidy is not
#      installed (the toolchain image ships GCC only).
#
# Exit-code contract with the linter: 0 clean, 1 findings, >=2 usage/IO
# error. The gate distinguishes the two failure modes -- findings print the
# JSON artifact path; a usage/IO error means the gate itself is broken and
# is propagated as-is.
#
# Usage: scripts/lint.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
lint_bin=./build-lint/tools/strassen_lint

echo "== lint: hardened -Werror build =="
cmake --preset lint
cmake --build --preset lint -j "${jobs}"
ctest --preset lint -j "${jobs}" "$@"

echo "== lint: strassen_lint self-test (seeded violations) =="
seed_dir=$(mktemp -d)
trap 'rm -rf "${seed_dir}"' EXIT
# One seeded violation per rule family: a no-fail-region allocation
# (rule 2) and a direct mutex lock (rule 7), so both the serial-era and
# the concurrency rules are proved live before the real run.
cat > "${seed_dir}/seeded.cpp" <<'EOF'
#include <cstddef>
#include <mutex>
struct Arena { double* alloc(std::size_t); };
struct ScopedSuspend {};
void violate(Arena& arena) {
  ScopedSuspend nofail;
  double* p = arena.alloc(16);  // allocation inside a no-fail region
  (void)p;
}
void violate_lock(std::mutex& mu) {
  mu.lock();  // direct mutex lock, no RAII guard
  mu.unlock();
}
EOF
seed_rc=0
"${lint_bin}" --json "${seed_dir}/findings.json" "${seed_dir}" \
  > /dev/null || seed_rc=$?
if [ "${seed_rc}" -ne 1 ]; then
  echo "error: strassen_lint exited ${seed_rc} on seeded violations (want" \
       "exactly 1); the linter or its harness is broken"
  exit 1
fi
for rule in alloc-in-nofail lock-discipline; do
  if ! grep -q "\"rule\": \"${rule}\"" "${seed_dir}/findings.json"; then
    echo "error: seeded ${rule} violation not reported; the rule is dead"
    exit 1
  fi
done
echo "seeded violations rejected, linter is live"

echo "== lint: strassen_lint src/ tools/ =="
json_out=build-lint/lint_findings.json
lint_rc=0
"${lint_bin}" --json "${json_out}" src tools || lint_rc=$?
if [ "${lint_rc}" -eq 1 ]; then
  echo "error: lint findings above; JSON artifact: ${json_out}"
  exit 1
elif [ "${lint_rc}" -ge 2 ]; then
  echo "error: strassen_lint usage/IO failure (exit ${lint_rc})"
  exit "${lint_rc}"
fi

if command -v clang-tidy > /dev/null 2>&1; then
  echo "== lint: clang-tidy =="
  mapfile -t tidy_sources < <(git ls-files 'src/*.cpp')
  clang-tidy -p build-lint --quiet "${tidy_sources[@]}"
else
  echo "== lint: clang-tidy not installed; skipped (GCC-only toolchain) =="
fi

echo "Lint stage passed."
