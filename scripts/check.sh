#!/usr/bin/env bash
# Pre-merge check: the lint stage (hardened -Werror build evaluating the
# compile-time schedule proofs, strassen_lint project invariants,
# clang-tidy when available -- scripts/lint.sh), then the release and
# sanitizer presets with the test suite under each. The tsan preset builds
# everything but runs only the concurrency-relevant suites (test_parallel,
# test_faults, test_cabi), via the label filter in CMakePresets.json.
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== stage: lint =="
scripts/lint.sh

for preset in release asan tsan; do
  echo "== preset: ${preset} =="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}" "$@"
done

echo "All checks passed."
