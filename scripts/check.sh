#!/usr/bin/env bash
# Pre-merge check: the lint stage (hardened -Werror build evaluating the
# compile-time schedule proofs, strassen_lint project invariants,
# clang-tidy when available -- scripts/lint.sh), then the release and
# sanitizer presets with the test suite under each. The tsan preset builds
# everything but runs only the concurrency-relevant suites (test_parallel,
# test_faults, test_cabi, test_kernels, test_sgefmm), via the label filter
# in CMakePresets.json. Then the kernel matrix: the packed-GEMM suites
# forced onto the scalar micro-kernel and onto the best SIMD one
# (STRASSEN_KERNEL, resolved at process start), under release and asan --
# the only way the env-resolved dispatch path itself gets exercised.
# The parallel and serving matrices sweep the scheduler and admission env
# knobs the same way.
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== stage: lint =="
scripts/lint.sh

# Path-sensitive static analysis over the concurrency-dense subsystems
# (support, serve, parallel) -- the layers the section 13 lint rules
# guard, where an analyzer can still catch what text-level rules cannot
# (leaks on error paths, use-after-move, null derefs). Tool selection is
# tolerant of the GCC-only reference image:
#   * clang --analyze, when installed: findings are fatal;
#   * otherwise gcc -fanalyzer: ADVISORY only -- its C++ support is
#     experimental in GCC 12 (std::string/std::function temporaries on
#     exception paths produce known false leaks), so findings are printed
#     for review but do not fail the gate, and template-heavy files are
#     cut off by a per-file timeout rather than stalling the check;
#   * neither available: skipped with a notice.
echo "== stage: analyzer (src/support src/serve src/parallel) =="
mapfile -t analyzer_sources < <(
  git ls-files 'src/support/*.cpp' 'src/serve/*.cpp' 'src/parallel/*.cpp')
if command -v clang > /dev/null 2>&1; then
  for f in "${analyzer_sources[@]}"; do
    echo "-- clang --analyze ${f}"
    clang --analyze --analyzer-output text -std=c++20 -Isrc "${f}"
  done
elif g++ -fanalyzer -fsyntax-only -x c++ -std=c++20 /dev/null \
    > /dev/null 2>&1; then
  for f in "${analyzer_sources[@]}"; do
    rc=0
    timeout 120 g++ -fanalyzer -std=c++20 -Isrc -c "${f}" -o /dev/null \
      2> /tmp/strassen_fanalyzer.log || rc=$?
    nwarn=$(grep -c 'warning:' /tmp/strassen_fanalyzer.log || true)
    if [ "${rc}" -eq 124 ]; then
      echo "-- gcc -fanalyzer ${f}: timed out (advisory; template-heavy)"
    elif [ "${nwarn}" -gt 0 ]; then
      echo "-- gcc -fanalyzer ${f}: ${nwarn} advisory finding(s):"
      grep 'warning:' /tmp/strassen_fanalyzer.log | sed 's/^/     /'
    else
      echo "-- gcc -fanalyzer ${f}: clean"
    fi
  done
else
  echo "no static analyzer available; skipped"
fi

for preset in release asan tsan; do
  echo "== preset: ${preset} =="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}" "$@"
done

# Kernel matrix: the suites that drive the packed skeleton, re-run with the
# kernel pinned by environment. "auto" exercises the CPUID-best choice
# (identical to the plain runs above on most machines, but it also covers
# the env-parsing path); "scalar" proves the portable fallback end to end.
# STRASSEN_KERNEL selects the same arch tier for both element types, so
# including test_sgefmm alongside the double suites sweeps the float
# kernels (scalar-8x8-f32 / avx512-16x8-f32) through the same matrix.
kernel_suites='test_kernels|test_blas|test_fused|test_faults|test_sgefmm'
for preset in release asan; do
  for kern in scalar auto; do
    echo "== kernel matrix: ${preset} / STRASSEN_KERNEL=${kern} =="
    STRASSEN_KERNEL="${kern}" ctest --preset "${preset}" -j "${jobs}" \
      -L "${kernel_suites}" "$@"
  done
done

# Parallel-scheduler matrix: the DAG executor's suites re-run with the
# scheduler knobs pinned by environment, under release and (for the data
# races a wrong schedule would introduce) tsan. Depth x lanes covers both
# graph shapes, the single-lane degenerate case, and lanes > pool workers
# (stealing with contention). The tests that pin cfg fields explicitly are
# env-immune; this sweep exercises the env-resolution paths everywhere
# else.
parallel_suites='test_parallel|test_faults|test_sgefmm'
for preset in release tsan; do
  for depth in 1 2; do
    for lanes in 1 7; do
      echo "== parallel matrix: ${preset} / STRASSEN_PAR_DEPTH=${depth} STRASSEN_PAR_LANES=${lanes} =="
      STRASSEN_PAR_DEPTH="${depth}" STRASSEN_PAR_LANES="${lanes}" \
        ctest --preset "${preset}" -j "${jobs}" -L "${parallel_suites}" "$@"
    done
  done
done

# Serving matrix: the serving suite re-run with the C-ABI process queue's
# admission knobs pinned by environment (overflow policies x workspace
# budgets), under release and (for the submit/worker/watchdog interleavings)
# tsan. The in-process QueueT tests construct their ServeOptions explicitly
# and are env-immune; the sweep exercises the env-resolution path the
# strassen_*_submit C ABI uses to build its lazy process queues, plus the
# whole suite's behavior when that queue is budget-constrained.
for preset in release tsan; do
  for policy in block reject shed; do
    for budget in 0 4096; do
      echo "== serving matrix: ${preset} / STRASSEN_SERVE_POLICY=${policy} STRASSEN_SERVE_BUDGET=${budget} =="
      STRASSEN_SERVE_POLICY="${policy}" STRASSEN_SERVE_BUDGET="${budget}" \
        STRASSEN_SERVE_QUEUE_CAP=8 \
        ctest --preset "${preset}" -j "${jobs}" -L serve "$@"
    done
  done
done

# Prepack matrix: the prepacked-operand suite (streamed-vs-fresh bitwise
# parity across kernels x element types x threads x schemes, hard-miss
# discipline, pack-handle fault sweeps, serving/C-ABI round trips) re-run
# with the kernel pinned by environment -- the handle's kernel stamp is
# exactly what the env-resolved dispatch can invalidate -- under release
# and (for the allocation-failure paths in the sweeps) asan.
for preset in release asan; do
  for kern in scalar auto; do
    echo "== prepack matrix: ${preset} / STRASSEN_KERNEL=${kern} =="
    STRASSEN_KERNEL="${kern}" ctest --preset "${preset}" -j "${jobs}" \
      -L prepack "$@"
  done
done

# Quick autotune: a tiny-budget end-to-end pass through the tuning chain
# (measure -> persist -> checked reload -> install -> consult). The CLI
# exits nonzero unless the final use_tuned call actually consulted the
# installed policy, so this stage asserts persisted taus reach dispatch --
# the regression a stale-stamp or broken-install bug would cause.
echo "== stage: quick autotune =="
cmake --build --preset release -j "${jobs}" --target autotune_cli
autotune_params="$(mktemp /tmp/strassen_tuned.XXXXXX.params)"
./build/examples/autotune_cli --quick --out "${autotune_params}"
rm -f "${autotune_params}"

# Refresh the committed precision snapshot: the stability bench's second
# stage measures forward error vs speed for C/STRASSEN1/STRASSEN2/FUSED in
# both element types and rewrites BENCH_precision.json in the repo root.
echo "== precision snapshot: bench_ablation_stability =="
cmake --build --preset release -j "${jobs}" --target bench_ablation_stability
# Paper-scale, so the refreshed snapshot matches the committed artifact's
# problem size (1024^3) rather than the smoke default.
STRASSEN_BENCH_FULL=1 ./build/bench/bench_ablation_stability

echo "All checks passed."
